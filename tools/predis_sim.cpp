// predis-sim — command-line driver for the simulation framework.
//
// Run any protocol/topology experiment from the shell and get a table
// or JSON back; the same entry points the bench binaries use, exposed
// with flags.
//
//   predis-sim cluster --protocol p-pbft --nodes 4 --load 10000 --wan
//   predis-sim cluster --protocol narwhal --load 18000 --json
//   predis-sim distribution --topology multi-zone --full-nodes 24 --zones 3
//   predis-sim propagation --topology star --block-mb 5 --full-nodes 100
//
// Exit status is non-zero on inconsistent ledgers, so the tool can act
// as a scriptable safety check.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "core/experiment.hpp"
#include "multizone/experiments.hpp"

namespace {

using namespace predis;

struct Args {
  std::map<std::string, std::string> named;
  bool flag(const std::string& name) const { return named.count(name) != 0; }
  std::string get(const std::string& name, const std::string& fallback) const {
    const auto it = named.find(name);
    return it == named.end() ? fallback : it->second;
  }
  double num(const std::string& name, double fallback) const {
    const auto it = named.find(name);
    return it == named.end() ? fallback : std::atof(it->second.c_str());
  }
};

Args parse(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) continue;
    key = key.substr(2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      args.named[key] = argv[++i];
    } else {
      args.named[key] = "1";
    }
  }
  return args;
}

int usage() {
  std::puts(
      "predis-sim — Predis / Multi-Zone simulation driver\n"
      "\n"
      "  predis-sim cluster [--protocol pbft|hotstuff|p-pbft|p-hs|narwhal|stratus]\n"
      "                     [--nodes N] [--load TPS] [--wan] [--batch N]\n"
      "                     [--bundle N] [--duration S] [--faulty N]\n"
      "                     [--fault silent|withhold] [--seed N] [--json]\n"
      "  predis-sim distribution [--topology star|multi-zone] [--nodes N]\n"
      "                     [--full-nodes N] [--zones N] [--load TPS] [--json]\n"
      "  predis-sim propagation [--topology star|random|multi-zone]\n"
      "                     [--block-mb N] [--full-nodes N] [--zones N] [--json]\n");
  return 2;
}

std::optional<core::Protocol> parse_protocol(const std::string& name) {
  if (name == "pbft") return core::Protocol::kPbft;
  if (name == "hotstuff") return core::Protocol::kHotStuff;
  if (name == "p-pbft") return core::Protocol::kPredisPbft;
  if (name == "p-hs") return core::Protocol::kPredisHotStuff;
  if (name == "narwhal") return core::Protocol::kNarwhal;
  if (name == "stratus") return core::Protocol::kStratus;
  return std::nullopt;
}

int run_cluster_cmd(const Args& args) {
  const auto protocol = parse_protocol(args.get("protocol", "p-pbft"));
  if (!protocol) {
    std::fprintf(stderr, "unknown --protocol\n");
    return usage();
  }
  core::ClusterConfig cfg;
  cfg.protocol = *protocol;
  cfg.n_consensus = static_cast<std::size_t>(args.num("nodes", 4));
  cfg.f = (cfg.n_consensus - 1) / 3;
  cfg.wan = args.flag("wan");
  cfg.offered_load_tps = args.num("load", 8000);
  cfg.n_clients = std::max<std::size_t>(8, cfg.n_consensus);
  cfg.batch_size = static_cast<std::size_t>(args.num("batch", 800));
  cfg.bundle_size = static_cast<std::size_t>(args.num("bundle", 50));
  cfg.duration = seconds(static_cast<std::int64_t>(args.num("duration", 12)));
  cfg.warmup = cfg.duration / 3;
  cfg.seed = static_cast<std::uint64_t>(args.num("seed", 1));
  cfg.n_faulty = static_cast<std::size_t>(args.num("faulty", 0));
  const std::string fault = args.get("fault", "silent");
  cfg.fault_mode = fault == "withhold"
                       ? consensus::predis::FaultMode::kPartialDissemination
                       : consensus::predis::FaultMode::kSilent;
  if (cfg.n_faulty == 0) {
    cfg.fault_mode = consensus::predis::FaultMode::kNone;
  }

  const core::ClusterResult r = core::run_cluster(cfg);
  if (args.flag("json")) {
    std::printf(
        "{\"protocol\":\"%s\",\"nodes\":%zu,\"wan\":%s,"
        "\"offered_tps\":%.0f,\"throughput_tps\":%.1f,"
        "\"avg_latency_ms\":%.2f,\"p50_latency_ms\":%.2f,"
        "\"p99_latency_ms\":%.2f,\"committed_txs\":%llu,"
        "\"blocks\":%zu,\"consistent\":%s,\"ledgers_consistent\":%s,"
        "\"consensus_uplink_mbps\":%.2f}\n",
        core::to_string(cfg.protocol), cfg.n_consensus,
        cfg.wan ? "true" : "false", cfg.offered_load_tps, r.throughput_tps,
        r.avg_latency_ms, r.p50_latency_ms, r.p99_latency_ms,
        static_cast<unsigned long long>(r.committed_txs), r.commit_events,
        r.consistent ? "true" : "false",
        r.ledgers_consistent ? "true" : "false", r.consensus_uplink_mbps);
  } else {
    std::printf("protocol      : %s (%zu nodes, %s)\n",
                core::to_string(cfg.protocol), cfg.n_consensus,
                cfg.wan ? "WAN" : "LAN");
    std::printf("throughput    : %.0f tx/s (offered %.0f)\n",
                r.throughput_tps, cfg.offered_load_tps);
    std::printf("latency       : avg %.1f / p50 %.1f / p99 %.1f ms\n",
                r.avg_latency_ms, r.p50_latency_ms, r.p99_latency_ms);
    std::printf("blocks        : %zu (%llu txs)\n", r.commit_events,
                static_cast<unsigned long long>(r.committed_txs));
    std::printf("uplink        : %.1f Mbps avg per consensus node\n",
                r.consensus_uplink_mbps);
    std::printf("safety        : commits %s, ledgers %s\n",
                r.consistent ? "consistent" : "INCONSISTENT",
                r.ledgers_consistent ? "consistent" : "INCONSISTENT");
  }
  return (r.consistent && r.ledgers_consistent) ? 0 : 1;
}

int run_distribution_cmd(const Args& args) {
  multizone::ThroughputConfig cfg;
  cfg.topology = args.get("topology", "multi-zone") == "star"
                     ? multizone::Topology::kStar
                     : multizone::Topology::kMultiZone;
  cfg.n_consensus = static_cast<std::size_t>(args.num("nodes", 4));
  cfg.f = (cfg.n_consensus - 1) / 3;
  cfg.n_full = static_cast<std::size_t>(args.num("full-nodes", 24));
  cfg.n_zones = static_cast<std::size_t>(args.num("zones", 3));
  cfg.offered_load_tps = args.num("load", 9000);
  cfg.duration = seconds(static_cast<std::int64_t>(args.num("duration", 12)));
  cfg.warmup = cfg.duration / 2;
  cfg.seed = static_cast<std::uint64_t>(args.num("seed", 1));

  const multizone::ThroughputResult r =
      multizone::run_distribution_cluster(cfg);
  if (args.flag("json")) {
    std::printf(
        "{\"topology\":\"%s\",\"full_nodes\":%zu,\"zones\":%zu,"
        "\"throughput_tps\":%.1f,\"avg_latency_ms\":%.2f,"
        "\"coverage\":%.3f,\"relayers\":%zu,\"uplink_mbps\":%.2f,"
        "\"consistent\":%s}\n",
        multizone::to_string(cfg.topology), cfg.n_full, cfg.n_zones,
        r.throughput_tps, r.avg_latency_ms, r.full_node_coverage,
        r.relayers_seen, r.consensus_uplink_mbps,
        r.consistent ? "true" : "false");
  } else {
    std::printf("topology      : %s (%zu full nodes, %zu zones)\n",
                multizone::to_string(cfg.topology), cfg.n_full, cfg.n_zones);
    std::printf("throughput    : %.0f tx/s (offered %.0f)\n",
                r.throughput_tps, cfg.offered_load_tps);
    std::printf("coverage      : %.0f%% of blocks rebuilt by full nodes\n",
                r.full_node_coverage * 100);
    std::printf("relayers      : %zu active\n", r.relayers_seen);
    std::printf("safety        : %s\n",
                r.consistent ? "consistent" : "INCONSISTENT");
  }
  return r.consistent ? 0 : 1;
}

int run_propagation_cmd(const Args& args) {
  multizone::PropagationConfig cfg;
  const std::string topo = args.get("topology", "multi-zone");
  cfg.topology = topo == "star"     ? multizone::Topology::kStar
                 : topo == "random" ? multizone::Topology::kRandom
                                    : multizone::Topology::kMultiZone;
  cfg.n_consensus = static_cast<std::size_t>(args.num("nodes", 8));
  cfg.f = (cfg.n_consensus - 1) / 3;
  cfg.n_full = static_cast<std::size_t>(args.num("full-nodes", 100));
  cfg.n_zones = static_cast<std::size_t>(args.num("zones", 3));
  cfg.block_bytes =
      static_cast<std::size_t>(args.num("block-mb", 5)) << 20;
  cfg.n_blocks = static_cast<std::size_t>(args.num("blocks", 3));
  cfg.seed = static_cast<std::uint64_t>(args.num("seed", 1));

  const multizone::PropagationResult r = multizone::run_propagation(cfg);
  if (args.flag("json")) {
    std::printf("{\"topology\":\"%s\",\"block_mb\":%.0f,\"coverage\":%.3f",
                multizone::to_string(cfg.topology),
                static_cast<double>(cfg.block_bytes) / (1 << 20),
                r.full_coverage_fraction);
    for (const auto& [frac, ms] : r.latency_ms_at_fraction) {
      std::printf(",\"latency_ms_p%.0f\":%.1f", frac * 100, ms);
    }
    std::puts("}");
  } else {
    std::printf("topology      : %s, %zu full nodes, %.0f MB blocks\n",
                multizone::to_string(cfg.topology), cfg.n_full,
                static_cast<double>(cfg.block_bytes) / (1 << 20));
    for (const auto& [frac, ms] : r.latency_ms_at_fraction) {
      std::printf("  %3.0f%% of nodes reached in %8.0f ms\n", frac * 100,
                  ms);
    }
    std::printf("coverage      : %.0f%%\n", r.full_coverage_fraction * 100);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Args args = parse(argc, argv, 2);
  if (command == "cluster") return run_cluster_cmd(args);
  if (command == "distribution") return run_distribution_cmd(args);
  if (command == "propagation") return run_propagation_cmd(args);
  return usage();
}
