// swarm — deterministic fault-schedule swarm runner.
//
// Executes N seeded cluster simulations under composed fault plans
// (crashes, partitions, jitter, drops, equivocation), each with the
// full safety-invariant registry armed, in parallel worker threads.
// On a violation it prints the invariant report, the fault plan and a
// one-line repro command, and exits non-zero.
//
//   swarm --seeds 200 --protocol predis
//   swarm --seeds 50 --protocol narwhal --nodes 7 --threads 8
//   swarm --seeds 1 --seed-base 1337 --protocol p-hs --verbose
//
// Every run records a trace digest — a running SHA-256 over the full
// message-delivery sequence — so `--verify-determinism` can prove that
// re-running a seed replays the run byte-for-byte.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hpp"
#include "common/sha256.hpp"
#include "core/swarm.hpp"

namespace {

using namespace predis;

struct Args {
  std::map<std::string, std::string> named;
  bool flag(const std::string& name) const { return named.count(name) != 0; }
  std::string get(const std::string& name, const std::string& fallback) const {
    const auto it = named.find(name);
    return it == named.end() ? fallback : it->second;
  }
  double num(const std::string& name, double fallback) const {
    const auto it = named.find(name);
    return it == named.end() ? fallback : std::atof(it->second.c_str());
  }
};

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) continue;
    key = key.substr(2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      args.named[key] = argv[++i];
    } else {
      args.named[key] = "1";
    }
  }
  return args;
}

int usage() {
  std::puts(
      "swarm — deterministic fault-schedule swarm runner\n"
      "\n"
      "  swarm [--seeds N] [--seed-base S] [--threads N]\n"
      "        [--protocol pbft|hotstuff|p-pbft|predis|p-hs|narwhal|stratus]\n"
      "        [--nodes N] [--load TPS] [--duration S] [--events N]\n"
      "        [--lan] [--no-equivocation] [--verify-determinism]\n"
      "        [--verbose]\n"
      "\n"
      "Runs one simulation per seed in [seed-base, seed-base + seeds) with\n"
      "a seed-derived fault schedule and all safety invariants armed.\n"
      "Exit 0 = every seed clean; exit 1 = first violating seed reported\n"
      "with a repro command.\n");
  return 2;
}

std::optional<core::Protocol> parse_protocol(const std::string& name) {
  if (name == "pbft") return core::Protocol::kPbft;
  if (name == "hotstuff") return core::Protocol::kHotStuff;
  if (name == "p-pbft" || name == "predis") return core::Protocol::kPredisPbft;
  if (name == "p-hs") return core::Protocol::kPredisHotStuff;
  if (name == "narwhal") return core::Protocol::kNarwhal;
  if (name == "stratus") return core::Protocol::kStratus;
  return std::nullopt;
}

const char* protocol_flag(core::Protocol p) {
  switch (p) {
    case core::Protocol::kPbft:
      return "pbft";
    case core::Protocol::kHotStuff:
      return "hotstuff";
    case core::Protocol::kPredisPbft:
      return "p-pbft";
    case core::Protocol::kPredisHotStuff:
      return "p-hs";
    case core::Protocol::kNarwhal:
      return "narwhal";
    case core::Protocol::kStratus:
      return "stratus";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  if (args.flag("help") || args.flag("h")) return usage();
  // Banned/equivocating producers spam warnings by design; a swarm run
  // cares about invariants, not per-run engine chatter.
  if (!args.flag("verbose")) set_log_level(LogLevel::kError);

  const auto protocol = parse_protocol(args.get("protocol", "p-pbft"));
  if (!protocol) {
    std::fprintf(stderr, "unknown --protocol\n");
    return usage();
  }

  core::SwarmCaseConfig base;
  base.protocol = *protocol;
  base.n_consensus = static_cast<std::size_t>(args.num("nodes", 4));
  base.f = (base.n_consensus - 1) / 3;
  if (base.f == 0) {
    std::fprintf(stderr, "need at least 4 nodes (f >= 1)\n");
    return 2;
  }
  base.wan = !args.flag("lan");
  base.offered_load_tps = args.num("load", 2000);
  base.duration =
      seconds(static_cast<std::int64_t>(args.num("duration", 10)));
  base.faults.events = static_cast<std::size_t>(args.num("events", 6));
  // Leave a fault-free tail longer than the ban grace, so the ban-list
  // invariant has a checked window after the network quiesces.
  base.faults.horizon = base.duration / 3;
  base.faults.equivocation = !args.flag("no-equivocation");
  base.verbose = args.flag("verbose");

  const std::uint64_t n_seeds =
      static_cast<std::uint64_t>(args.num("seeds", 20));
  if (n_seeds == 0) {
    // A typo'd --seeds would otherwise "pass" vacuously in CI.
    std::fputs("swarm: --seeds must be a positive integer\n", stderr);
    return 2;
  }
  const std::uint64_t seed_base =
      static_cast<std::uint64_t>(args.num("seed-base", 1));
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t n_threads = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             args.num("threads", hw == 0 ? 4 : static_cast<double>(hw))));

  std::printf("swarm: %llu seeds from %llu, protocol %s, %zu nodes, "
              "%zu fault events/run, %zu threads\n",
              static_cast<unsigned long long>(n_seeds),
              static_cast<unsigned long long>(seed_base),
              core::to_string(base.protocol), base.n_consensus,
              base.faults.events, n_threads);

  std::atomic<std::uint64_t> next{0};
  std::mutex out_mutex;
  std::vector<core::SwarmCaseResult> failures;
  std::uint64_t total_commits = 0;
  std::uint64_t total_faults = 0;
  std::uint64_t total_reconstructions = 0;

  auto worker = [&] {
    for (;;) {
      const std::uint64_t i = next.fetch_add(1);
      if (i >= n_seeds) return;
      core::SwarmCaseConfig cfg = base;
      cfg.seed = seed_base + i;

      core::SwarmCaseResult r = core::run_swarm_case(cfg);
      if (args.flag("verify-determinism")) {
        const core::SwarmCaseResult again = core::run_swarm_case(cfg);
        if (again.trace_digest != r.trace_digest) {
          r.ok = false;
          r.violations.push_back(core::Violation{
              "determinism",
              "same seed produced different trace digests (" +
                  to_hex(r.trace_digest) + " vs " +
                  to_hex(again.trace_digest) + ")",
              0, 0});
          r.report = "1 violation(s): [determinism]";
        }
        if (again.metrics_digest != r.metrics_digest) {
          r.ok = false;
          r.violations.push_back(core::Violation{
              "determinism",
              "same seed produced different metrics digests (" +
                  to_hex(r.metrics_digest) + " vs " +
                  to_hex(again.metrics_digest) + ")",
              0, 0});
          r.report = "1 violation(s): [determinism]";
        }
      }

      std::lock_guard<std::mutex> lock(out_mutex);
      total_commits += r.commits_checked;
      total_faults += r.faults_injected;
      total_reconstructions += r.reconstructions_checked;
      if (cfg.verbose || !r.ok) {
        std::printf("seed %llu: %s — %llu commits checked, %zu faults, "
                    "%.0f tx/s, trace %s/%llu\n",
                    static_cast<unsigned long long>(cfg.seed),
                    r.ok ? "ok" : "VIOLATION",
                    static_cast<unsigned long long>(r.commits_checked),
                    r.faults_injected, r.throughput_tps,
                    short_hex(r.trace_digest).c_str(),
                    static_cast<unsigned long long>(r.trace_events));
        if (cfg.verbose || !r.ok) {
          std::fputs(r.fault_plan.c_str(), stdout);
        }
      }
      if (!r.ok) failures.push_back(std::move(r));
    }
  };

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < n_threads; ++t) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();

  if (!failures.empty()) {
    const core::SwarmCaseResult* first = &failures[0];
    for (const auto& f : failures) {
      if (f.seed < first->seed) first = &f;
    }
    std::printf("\n%zu/%llu seeds violated invariants. First: seed %llu\n",
                failures.size(), static_cast<unsigned long long>(n_seeds),
                static_cast<unsigned long long>(first->seed));
    std::fputs(first->report.c_str(), stdout);
    std::printf("\nrepro: swarm --protocol %s --nodes %zu --seed-base %llu "
                "--seeds 1 --verbose\n",
                protocol_flag(base.protocol), base.n_consensus,
                static_cast<unsigned long long>(first->seed));
    return 1;
  }

  std::printf("all %llu seeds clean: %llu commits checked, %llu faults "
              "injected, %llu bundle reconstructions verified\n",
              static_cast<unsigned long long>(n_seeds),
              static_cast<unsigned long long>(total_commits),
              static_cast<unsigned long long>(total_faults),
              static_cast<unsigned long long>(total_reconstructions));
  return 0;
}
