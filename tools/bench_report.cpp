// bench_report — runs the erasure and micro hot-path benchmarks with a
// built-in wall-clock harness and emits machine-readable JSON
// (BENCH_erasure.json, BENCH_micro.json) that seeds the repo's perf
// trajectory. Future PRs regress against these files.
//
// The erasure report carries before/after numbers: every encode shape
// is measured twice, once through the fused-row-kernel path and once
// through a faithful reimplementation of the seed's element-wise
// GF256::mul encoder, so the recorded speedup is measured on the same
// machine at the same moment rather than quoted from an older run.
//
// Usage: bench_report [--smoke] [--out-dir DIR]
//   --smoke    reduced iteration budget (exercises the emitters in CI)
//   --out-dir  directory for the JSON files (default: cwd)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "bundle/predis_block.hpp"
#include "common/rng.hpp"
#include "common/sha256_kernels.hpp"
#include "erasure/stripe_codec.hpp"

// Prevents the optimizer from deleting measured work; never read back.
volatile std::size_t benchmark_sink_slot = 0;

namespace {

void benchmark_sink(std::size_t v) { benchmark_sink_slot = v; }

using predis::Bytes;
using predis::BytesView;
using predis::Hash32;
using predis::KeyPair;
using predis::MerkleTree;
using predis::MutBytesView;
using predis::Rng;
using predis::Sha256;
// predis-lint: allow(D2): wall-clock is the point of a host benchmark.
using Clock = std::chrono::steady_clock;

Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

/// Run `fn` repeatedly for ~`budget_ms` and return seconds per call.
double time_per_call(const std::function<void()>& fn, double budget_ms) {
  fn();  // warm up tables / caches
  std::size_t iters = 1;
  for (;;) {
    const auto start = Clock::now();
    for (std::size_t i = 0; i < iters; ++i) fn();
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (elapsed * 1e3 >= budget_ms || iters > (1u << 24)) {
      return elapsed / static_cast<double>(iters);
    }
    // Aim straight at the budget instead of doubling forever.
    const double target = budget_ms / 1e3;
    const std::size_t next =
        elapsed > 0 ? static_cast<std::size_t>(
                          static_cast<double>(iters) * target / elapsed * 1.2)
                    : iters * 2;
    iters = next > iters ? next : iters * 2;
  }
}

/// The seed's element-wise encode path, kept verbatim as the measured
/// baseline: one GF256::mul table lookup per output byte.
std::vector<Bytes> baseline_encode(const predis::erasure::ReedSolomon& rs,
                                   BytesView payload) {
  using predis::erasure::GF;
  using predis::erasure::GF256;
  const std::size_t k = rs.data_shards();
  const std::size_t n = rs.total_shards();
  const std::size_t total = 4 + payload.size();
  const std::size_t shard_size = (total + k - 1) / k;

  std::vector<Bytes> shards(n, Bytes(shard_size, 0));
  Bytes prefixed(shard_size * k, 0);
  prefixed[0] = static_cast<std::uint8_t>(payload.size());
  prefixed[1] = static_cast<std::uint8_t>(payload.size() >> 8);
  prefixed[2] = static_cast<std::uint8_t>(payload.size() >> 16);
  prefixed[3] = static_cast<std::uint8_t>(payload.size() >> 24);
  if (!payload.empty()) {
    std::memcpy(prefixed.data() + 4, payload.data(), payload.size());
  }
  for (std::size_t i = 0; i < k; ++i) {
    std::memcpy(shards[i].data(), prefixed.data() + i * shard_size,
                shard_size);
  }
  const predis::erasure::Matrix& coding = rs.coding_matrix();
  for (std::size_t r = k; r < n; ++r) {
    Bytes& out = shards[r];
    for (std::size_t c = 0; c < k; ++c) {
      const GF factor = coding.at(r, c);
      if (factor == 0) continue;
      const Bytes& in = shards[c];
      for (std::size_t b = 0; b < shard_size; ++b) {
        out[b] ^= GF256::mul(factor, in[b]);
      }
    }
  }
  return shards;
}

struct JsonWriter {
  std::string buf;
  void raw(const std::string& s) { buf += s; }
  void kv(const char* key, double v, bool comma = true) {
    char tmp[96];
    std::snprintf(tmp, sizeof(tmp), "\"%s\": %.3f%s", key, v,
                  comma ? ", " : "");
    buf += tmp;
  }
  void kv(const char* key, std::size_t v, bool comma = true) {
    char tmp[96];
    std::snprintf(tmp, sizeof(tmp), "\"%s\": %zu%s", key, v,
                  comma ? ", " : "");
    buf += tmp;
  }
  void kv(const char* key, const char* v, bool comma = true) {
    buf += std::string("\"") + key + "\": \"" + v + "\"" +
           (comma ? ", " : "");
  }
  void kv(const char* key, bool v, bool comma = true) {
    buf += std::string("\"") + key + "\": " + (v ? "true" : "false") +
           (comma ? ", " : "");
  }
};

struct Shape {
  std::size_t k;
  std::size_t n;
  std::size_t payload;
};

int write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench_report: cannot write %s\n", path.c_str());
    return 1;
  }
  out << content;
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

int emit_erasure(const std::string& dir, bool smoke, double budget_ms) {
  using predis::erasure::GF256;
  using predis::erasure::ReedSolomon;

  const std::vector<Shape> shapes =
      smoke ? std::vector<Shape>{{3, 4, 25'600}, {7, 10, 65'536}}
            : std::vector<Shape>{{3, 4, 25'600},
                                 {6, 8, 25'600},
                                 {11, 16, 25'600},
                                 {7, 10, 16'384},
                                 {7, 10, 65'536},
                                 {7, 10, 262'144}};

  JsonWriter j;
  j.raw("{\n  ");
  j.kv("schema", "predis-bench-erasure/1");
  j.kv("tool", "bench_report");
  j.kv("smoke", smoke);
  j.kv("simd_enabled", GF256::simd_enabled());
  j.raw("\"baseline\": \"seed element-wise GF256::mul encoder "
        "(re-measured in-process)\",\n  \"encode\": [\n");

  for (std::size_t s = 0; s < shapes.size(); ++s) {
    const Shape& shape = shapes[s];
    const ReedSolomon rs(shape.k, shape.n);
    const Bytes payload = random_bytes(shape.payload, 11 + s);

    // Fast path: arena encode_into (the steady-state hot loop).
    std::vector<Bytes> shards(shape.n, Bytes(rs.shard_size(shape.payload)));
    std::vector<MutBytesView> views(shape.n);
    for (std::size_t i = 0; i < shape.n; ++i) {
      views[i] = MutBytesView(shards[i]);
    }
    const double fast_s = time_per_call(
        [&] { rs.encode_into(payload, views); }, budget_ms);
    const double base_s = time_per_call(
        [&] {
          auto out = baseline_encode(rs, payload);
          benchmark_sink(out.back().back());
        },
        budget_ms);
    const double mb = static_cast<double>(shape.payload) / 1e6;
    const double fast_mbps = mb / fast_s;
    const double base_mbps = mb / base_s;

    j.raw("    {");
    j.kv("k", shape.k);
    j.kv("n", shape.n);
    j.kv("payload_bytes", shape.payload);
    j.kv("mb_per_s", fast_mbps);
    j.kv("baseline_mb_per_s", base_mbps);
    j.kv("speedup", fast_mbps / base_mbps, false);
    j.raw(s + 1 < shapes.size() ? "},\n" : "}\n");
  }

  j.raw("  ],\n  \"decode\": [\n");
  for (std::size_t s = 0; s < shapes.size(); ++s) {
    const Shape& shape = shapes[s];
    const ReedSolomon rs(shape.k, shape.n);
    const Bytes payload = random_bytes(shape.payload, 23 + s);
    const auto shards = rs.encode(payload);
    std::vector<std::optional<Bytes>> input(shards.begin(), shards.end());
    for (std::size_t i = 0; i < shape.n - shape.k; ++i) input[i].reset();
    const double dec_s = time_per_call(
        [&] {
          auto out = rs.try_decode(input);
          benchmark_sink(out.ok() ? out.value().size() : 0);
        },
        budget_ms);
    j.raw("    {");
    j.kv("k", shape.k);
    j.kv("n", shape.n);
    j.kv("payload_bytes", shape.payload);
    j.kv("dropped_shards", shape.n - shape.k);
    j.kv("mb_per_s", static_cast<double>(shape.payload) / 1e6 / dec_s,
         false);
    j.raw(s + 1 < shapes.size() ? "},\n" : "}\n");
  }

  j.raw("  ],\n  \"mul_row_add\": [\n");
  const std::vector<std::size_t> lens =
      smoke ? std::vector<std::size_t>{65'536}
            : std::vector<std::size_t>{1'024, 9'362, 65'536};
  for (std::size_t s = 0; s < lens.size(); ++s) {
    const std::size_t len = lens[s];
    const Bytes src = random_bytes(len, 31);
    Bytes dst = random_bytes(len, 32);
    const double fused_s = time_per_call(
        [&] { GF256::mul_row_add(dst.data(), src.data(), 0x57, len); },
        budget_ms);
    const double portable_s = time_per_call(
        [&] {
          GF256::mul_row_add_portable(dst.data(), src.data(), 0x57, len);
        },
        budget_ms);
    j.raw("    {");
    j.kv("len", len);
    j.kv("mb_per_s", static_cast<double>(len) / 1e6 / fused_s);
    j.kv("portable_mb_per_s", static_cast<double>(len) / 1e6 / portable_s,
         false);
    j.raw(s + 1 < lens.size() ? "},\n" : "}\n");
  }
  j.raw("  ]\n}\n");
  return write_file(dir + "/BENCH_erasure.json", j.buf);
}

int emit_micro(const std::string& dir, bool smoke, double budget_ms) {
  struct Entry {
    std::string name;
    std::size_t bytes;  // 0 = no throughput figure
    std::function<void()> fn;
  };
  namespace sk = predis::sha256_kernels;

  const Bytes data = random_bytes(25'600, 41);
  std::vector<Hash32> leaves;
  for (int i = 0; i < 800; ++i) {
    leaves.push_back(Sha256::hash(predis::as_bytes("leaf" + std::to_string(i))));
  }
  const KeyPair key = KeyPair::from_seed(42);
  const Bytes msg = random_bytes(256, 2);
  const predis::Signature sig = key.sign(msg);

  const predis::erasure::StripeCodec codec(7, 10);
  std::vector<predis::Transaction> txs(50);
  for (std::size_t i = 0; i < txs.size(); ++i) {
    txs[i].client = 1;
    txs[i].seq = i;
    txs[i].payload_seed = i * 0x9e37;
  }
  const predis::Bundle bundle =
      predis::make_bundle(0, 1, predis::kZeroHash, {1, 0, 0, 0}, txs, key);
  predis::erasure::StripeCodec::Encoded arena;

  std::vector<Entry> entries;
  entries.push_back({"sha256/25600", 25'600, [&] {
                       benchmark_sink(Sha256::hash(data)[0]);
                     }});
  entries.push_back({"merkle_root/800", 0, [&] {
                       benchmark_sink(MerkleTree::root_of(leaves)[0]);
                     }});
  entries.push_back({"sign_verify/256", 0, [&] {
                       benchmark_sink(
                           predis::verify(key.public_key(), msg, sig) ? 1 : 0);
                     }});
  entries.push_back({"stripe_codec_encode_into/k7n10", 0, [&] {
                       codec.encode_into(bundle, arena);
                       benchmark_sink(arena.stripes.back().data.back());
                     }});

  // Crypto-kernel sweep: the single-stream and pair-batch shapes timed
  // through every compiled-in + CPU-supported kernel, so the report
  // records the dispatch win on this machine. Note the avx2 kernel is
  // multi-buffer only — its single-stream compress resolves to the
  // portable rounds by design, and the sweep shows exactly that.
  constexpr std::uint32_t kIv[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372,
                                    0xa54ff53a, 0x510e527f, 0x9b05688c,
                                    0x1f83d9ab, 0x5be0cd19};
  const Bytes stream = random_bytes(400 * 64, 43);  // 25.6 KB, 400 blocks
  const Bytes pair_msgs = random_bytes(512 * 64, 44);
  static std::vector<Hash32> pair_out(512);
  for (sk::Kernel k :
       {sk::Kernel::kPortable, sk::Kernel::kShaNi, sk::Kernel::kAvx2}) {
    if (!sk::available(k)) continue;
    const sk::CompressFn compress = sk::compress(k);
    const sk::PairBatchFn pairs = sk::hash_pairs(k);
    entries.push_back({std::string("sha256_compress/25600/") + sk::name(k),
                       400 * 64, [compress, &stream, &kIv] {
                         std::uint32_t st[8];
                         std::memcpy(st, kIv, sizeof(st));
                         compress(st, stream.data(), 400);
                         benchmark_sink(st[0]);
                       }});
    entries.push_back({std::string("sha256_hash_pairs/512/") + sk::name(k),
                       512 * 64, [pairs, &pair_msgs] {
                         pairs(pair_msgs.data(), 512, pair_out.data());
                         benchmark_sink(pair_out[0][0]);
                       }});
  }

  JsonWriter j;
  j.raw("{\n  ");
  j.kv("schema", "predis-bench-micro/1");
  j.kv("tool", "bench_report");
  j.kv("smoke", smoke);
  j.kv("sha256_kernel", sk::name(sk::active()));
  j.raw("\"benches\": [\n");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const double per_call = time_per_call(entries[i].fn, budget_ms);
    j.raw("    {");
    j.kv("name", entries[i].name.c_str());
    if (entries[i].bytes > 0) {
      j.kv("ns_per_op", per_call * 1e9);
      j.kv("mb_per_s",
           static_cast<double>(entries[i].bytes) / 1e6 / per_call, false);
    } else {
      j.kv("ns_per_op", per_call * 1e9, false);
    }
    j.raw(i + 1 < entries.size() ? "},\n" : "}\n");
  }
  j.raw("  ]\n}\n");
  return write_file(dir + "/BENCH_micro.json", j.buf);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_dir = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out-dir" && i + 1 < argc) {
      out_dir = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out-dir DIR]\n", argv[0]);
      return 2;
    }
  }
  const double budget_ms = smoke ? 10.0 : 250.0;
  int rc = emit_erasure(out_dir, smoke, budget_ms);
  rc |= emit_micro(out_dir, smoke, budget_ms);
  return rc;
}
