// runtime_report — backend comparison for the Runtime seam. Runs one
// fixed P-PBFT cluster scenario and one Multi-Zone distribution
// scenario on both backends:
//
//   * SimRuntime            — deterministic discrete-event model;
//                             throughput/latency are model-time numbers
//                             under the 100 Mbps fluid network;
//   * ThreadRuntime (wall)  — the same scenario objects executing on a
//                             real worker pool; throughput/latency are
//                             wall-clock numbers limited by the host's
//                             cores (no modeled network).
//
// The scenario assembly code is byte-for-byte the same — only
// RunContext::backend changes — which is the point of the seam: the
// report fails loudly if a scenario can no longer run unmodified on
// both. Emits machine-readable BENCH_runtime.json.
//
// Usage: runtime_report [--smoke] [--strict] [--workers N] [--out-dir DIR]
//   --smoke    reduced durations (CI-sized runs)
//   --strict   exit non-zero when a run commits nothing, breaks
//              consistency, or the two backends disagree on safety
//   --workers  worker threads for the wall-clock backend (default 4)
//   --out-dir  directory for BENCH_runtime.json (default: cwd)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "multizone/experiments.hpp"
#include "runtime/environments.hpp"
#include "runtime/thread_runtime.hpp"

namespace {

struct RunNumbers {
  std::string scenario;
  std::string backend;   ///< "sim" or "threads".
  std::string clock;     ///< "virtual" or "wall".
  std::size_t workers = 1;
  double throughput_tps = 0.0;
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  std::uint64_t committed_txs = 0;
  bool consistent = true;
};

predis::core::ClusterConfig cluster_scenario(bool smoke) {
  predis::core::ClusterConfig cfg;
  cfg.protocol = predis::core::Protocol::kPredisPbft;
  cfg.wan = false;  // LAN shape: the wall backend has no WAN model.
  cfg.n_consensus = 4;
  cfg.f = 1;
  cfg.offered_load_tps = smoke ? 3'000.0 : 10'000.0;
  cfg.n_clients = 8;
  cfg.duration = smoke ? predis::seconds(3) : predis::seconds(8);
  cfg.warmup = smoke ? predis::seconds(1) : predis::seconds(3);
  cfg.seed = 17;
  return cfg;
}

predis::multizone::ThroughputConfig zone_scenario(bool smoke) {
  predis::multizone::ThroughputConfig cfg;
  cfg.topology = predis::multizone::Topology::kMultiZone;
  cfg.n_consensus = 4;
  cfg.f = 1;
  cfg.n_full = smoke ? 6 : 12;
  cfg.n_zones = 3;
  cfg.offered_load_tps = smoke ? 2'000.0 : 6'000.0;
  cfg.n_clients = 4;
  cfg.duration = smoke ? predis::seconds(3) : predis::seconds(8);
  cfg.warmup = smoke ? predis::seconds(1) : predis::seconds(3);
  cfg.seed = 17;
  return cfg;
}

RunNumbers run_cluster_on(bool smoke, predis::runtime::Runtime* backend,
                          const char* backend_name, const char* clock,
                          std::size_t workers) {
  predis::core::ClusterConfig cfg = cluster_scenario(smoke);
  cfg.ctx.backend = backend;
  const predis::core::ClusterResult r = predis::core::run_cluster(cfg);
  RunNumbers n;
  n.scenario = "predis_cluster";
  n.backend = backend_name;
  n.clock = clock;
  n.workers = workers;
  n.throughput_tps = r.throughput_tps;
  n.p50_latency_ms = r.p50_latency_ms;
  n.p99_latency_ms = r.p99_latency_ms;
  n.committed_txs = r.committed_txs;
  n.consistent = r.consistent && r.ledgers_consistent;
  return n;
}

RunNumbers run_zone_on(bool smoke, predis::runtime::Runtime* backend,
                       const char* backend_name, const char* clock,
                       std::size_t workers) {
  predis::multizone::ThroughputConfig cfg = zone_scenario(smoke);
  cfg.ctx.backend = backend;
  const predis::multizone::ThroughputResult r =
      predis::multizone::run_distribution_cluster(cfg);
  RunNumbers n;
  n.scenario = "multizone_distribution";
  n.backend = backend_name;
  n.clock = clock;
  n.workers = workers;
  n.throughput_tps = r.throughput_tps;
  n.p50_latency_ms = 0.0;  // Runner reports mean only.
  n.p99_latency_ms = 0.0;
  n.committed_txs = static_cast<std::uint64_t>(r.last_executed_max);
  n.consistent = r.consistent;
  return n;
}

std::unique_ptr<predis::runtime::ThreadRuntime> make_wall_backend(
    std::size_t workers) {
  predis::runtime::ThreadRuntimeConfig tcfg;
  tcfg.clock = predis::runtime::ClockMode::kWall;
  tcfg.workers = workers;
  tcfg.latency = predis::runtime::lan_latency();
  return std::make_unique<predis::runtime::ThreadRuntime>(tcfg);
}

void append_json(std::string& out, const RunNumbers& n, bool last) {
  char tmp[512];
  std::snprintf(
      tmp, sizeof(tmp),
      "    {\"scenario\": \"%s\", \"backend\": \"%s\", \"clock\": \"%s\", "
      "\"workers\": %zu, \"throughput_tps\": %.1f, \"p50_latency_ms\": %.3f, "
      "\"p99_latency_ms\": %.3f, \"committed_txs\": %llu, "
      "\"consistent\": %s}%s\n",
      n.scenario.c_str(), n.backend.c_str(), n.clock.c_str(), n.workers,
      n.throughput_tps, n.p50_latency_ms, n.p99_latency_ms,
      static_cast<unsigned long long>(n.committed_txs),
      n.consistent ? "true" : "false", last ? "" : ",");
  out += tmp;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool strict = false;
  std::size_t workers = 4;
  std::string out_dir = ".";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--out-dir") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: runtime_report [--smoke] [--strict] "
                   "[--workers N] [--out-dir DIR]\n");
      return 2;
    }
  }
  if (workers < 4) workers = 4;  // The report's contract: >= 4 real cores.

  std::vector<RunNumbers> runs;

  // Deterministic oracle first (internal SimRuntime).
  runs.push_back(run_cluster_on(smoke, nullptr, "sim", "virtual", 1));
  runs.push_back(run_zone_on(smoke, nullptr, "sim", "virtual", 1));

  // Same scenario objects, wall-clock worker pool. One fresh backend
  // per run: a Runtime carries one topology for its lifetime.
  {
    auto wall = make_wall_backend(workers);
    runs.push_back(run_cluster_on(smoke, wall.get(), "threads",
                                  "wall", wall->worker_count()));
  }
  {
    auto wall = make_wall_backend(workers);
    runs.push_back(run_zone_on(smoke, wall.get(), "threads", "wall",
                               wall->worker_count()));
  }

  bool ok = true;
  std::printf("runtime_report: %zu runs (%s)\n", runs.size(),
              smoke ? "smoke" : "full");
  for (const RunNumbers& n : runs) {
    std::printf(
        "  %-24s %-8s %-8s workers=%zu  %9.1f tx/s  p50 %7.2f ms  "
        "p99 %7.2f ms  committed %llu  %s\n",
        n.scenario.c_str(), n.backend.c_str(), n.clock.c_str(), n.workers,
        n.throughput_tps, n.p50_latency_ms, n.p99_latency_ms,
        static_cast<unsigned long long>(n.committed_txs),
        n.consistent ? "consistent" : "INCONSISTENT");
    if (!n.consistent) ok = false;
    if (n.scenario == "predis_cluster" && n.committed_txs == 0) ok = false;
  }

  std::string json = "{\n  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    append_json(json, runs[i], i + 1 == runs.size());
  }
  json += "  ]\n}\n";
  const std::string path = out_dir + "/BENCH_runtime.json";
  std::ofstream out(path);
  out << json;
  out.close();
  std::printf("wrote %s\n", path.c_str());

  if (strict && !ok) {
    std::fprintf(stderr, "runtime_report: FAILURES (see above)\n");
    return 1;
  }
  return 0;
}
