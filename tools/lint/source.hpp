// predis-lint analysis core, stage 1: raw text -> token stream.
//
// Loads a source file, blanks comments and string/char literals (so the
// rules never match inside them), harvests suppression pragmas from the
// comment text before dropping it, and tokenizes the rest. Also hosts
// the small token-navigation helpers (balanced-delimiter matching,
// template-argument skipping, identifier chains) every later stage
// builds on.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace predis::lint {

/// One harvested suppression pragma, kept for stale-suppression
/// accounting (rule S1) on top of the allow maps used for filtering.
struct Pragma {
  std::size_t line = 0;  ///< Line the pragma comment sits on.
  std::string rule;      ///< The rule it suppresses ("D2", ...).
  bool whole_file = false;
};

struct SourceFile {
  std::string path;
  std::vector<std::string> raw;   ///< Original lines (1-based via index+1).
  std::vector<std::string> code;  ///< Comments/strings blanked to spaces.
  std::map<std::size_t, std::set<std::string>> line_allows;
  std::set<std::string> file_allows;
  std::vector<Pragma> pragmas;    ///< Every allow, in source order.
};

/// Blank // and /* */ comments, "..." and '...' literals. Comment text
/// is scanned for allowlist pragmas before it is dropped.
SourceFile load_source(const std::string& path);

struct Token {
  std::string text;
  std::size_t line = 0;
  bool ident = false;
};

std::vector<Token> tokenize(const SourceFile& file);

/// Index of the token matching the opener at `open` ("(", "[", "{"),
/// or tokens.size() when unbalanced.
std::size_t match_forward(const std::vector<Token>& t, std::size_t open);

/// Index of the token matching the closer at `close` (")", "]", "}"),
/// or tokens.size() when unbalanced.
std::size_t match_backward(const std::vector<Token>& t, std::size_t close);

/// Skip a balanced template argument list starting at `i` (which must
/// point at "<"). Returns the index one past the closing ">", or `i`
/// if the list never closes (comparison operator, not a template).
std::size_t skip_template_args(const std::vector<Token>& t, std::size_t i);

/// Chain of the identifier starting at `i`, following . -> :: forwards
/// ("msg.index", "it->second.relayed"). Stops before `limit`.
std::string chain_starting_at(const std::vector<Token>& t, std::size_t i,
                              std::size_t limit);

/// One past the last token of the chain starting at `i` (so callers can
/// advance over a chain they just read).
std::size_t chain_end_index(const std::vector<Token>& t, std::size_t i,
                            std::size_t limit);

/// Backwards view of the chain ending at the identifier at `i`:
/// for `mb.q` at `q`, root="mb", prefix="mb"; for plain `q`, both
/// empty-rooted ("q" itself is the root with an empty prefix). When the
/// prefix routes through a call or subscript (`mailboxes_.at(id)->q`)
/// `complex` is set and the textual prefix is best-effort — lock
/// matching treats complex prefixes as wildcards.
struct ChainBack {
  std::string root;    ///< First identifier of the chain ("" if none).
  std::string prefix;  ///< Everything before the final identifier.
  bool complex = false;
};

ChainBack chain_ending_at(const std::vector<Token>& t, std::size_t i);

}  // namespace predis::lint
