// predis-lint analysis core, stage 4: the rules.
//
// Each rule consumes the per-file token stream, the pre-segmented
// function list and the pair-level symbol table, and appends
// diagnostics to the per-file output vector (so files can be analyzed
// in parallel and merged deterministically). D7 additionally emits
// lock-order edges which the driver folds into a global graph.
#pragma once

#include "dataflow.hpp"
#include "linter.hpp"

namespace predis::lint {

struct Context {
  const SourceFile& file;
  const std::vector<Token>& tokens;
  const std::vector<Function>& functions;
  const Symbols& symbols;
  const MustCheck& must_check;
  std::string pair;  ///< Pair key (path minus extension).
  std::vector<Diagnostic>& out;
  std::vector<LockEdge>& edges;
};

void emit(Context& ctx, std::size_t line, const std::string& rule,
          std::string message);

// Core (token-level) rules.
void run_d1(Context& ctx);  ///< No unordered iteration feeding protocol bytes.
void run_d2(Context& ctx);  ///< No ambient clock/RNG outside sim/.
void run_d3_call_sites(Context& ctx);  ///< No discarded Expected/try_*.
void run_d4(Context& ctx);  ///< Handler sender/index bounds checks.
void run_d5(Context& ctx);  ///< Casts fenced into low-level TUs.
void run_d6(Context& ctx);  ///< Backend types fenced behind Runtime.

/// Header pass for D3: record must-check names, optionally reporting
/// missing [[nodiscard]].
void collect_and_check_declarations(Context& ctx, MustCheck& must_check,
                                    bool emit_diagnostics);

// Flow (dataflow-backed) rules.
void run_d7(Context& ctx);  ///< Guarded-field lock discipline + order edges.
void run_d8(Context& ctx);  ///< Timer-handle lifecycle.
void run_d9(Context& ctx);  ///< Message-taint dataflow.

}  // namespace predis::lint
