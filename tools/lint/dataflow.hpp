// predis-lint analysis core, stage 3: intra-procedural dataflow.
//
// Two walkers over the statement tree from parser.hpp:
//
//   * LockWalker (D7): tracks the set of held mutexes through
//     lock_guard/scoped_lock/unique_lock declarations, defer_lock,
//     manual lock()/unlock() toggles and scope exits; reports accesses
//     to PREDIS_GUARDED_BY fields made without the named mutex held,
//     and every nested acquisition as a lock-order edge for the global
//     cycle check.
//
//   * TaintWalker (D9): propagates taint from message fields (and
//     PREDIS_MSG_DERIVED members) through assignments, aliases and
//     range-for loops until a kMax* clamp, modulo reduction or
//     dominating bounds check sanitizes it; reports tainted values that
//     index containers, size allocations, bound loops, or get stored
//     into unannotated members.
//
// Both are intentionally intra-procedural: a value passed into another
// function is that function's problem (documented in
// docs/static_analysis.md).
#pragma once

#include "parser.hpp"

namespace predis::lint {

// ---------------------------------------------------------------------------
// D7: lock discipline.
// ---------------------------------------------------------------------------

struct LockViolation {
  std::string field;
  std::string mutex;
  std::size_t line = 0;
};

/// Nested acquisition `from`-held-while-taking-`to`, with mutex names
/// qualified by file pair so same-named mutexes in different components
/// stay distinct.
struct LockEdge {
  std::string from;
  std::string to;
  std::string file;
  std::size_t line = 0;
};

struct LockReport {
  std::vector<LockViolation> violations;
  std::vector<LockEdge> edges;
};

LockReport analyze_locks(const std::vector<Token>& t, const Function& fn,
                         const Symbols& sym, const std::string& pair,
                         const std::string& file);

// ---------------------------------------------------------------------------
// D9: message taint.
// ---------------------------------------------------------------------------

struct TaintSink {
  enum Kind {
    kIndex,  ///< Tainted value subscripts a per-node vector.
    kAlloc,  ///< Tainted value sizes a resize/reserve.
    kLoop,   ///< Tainted value bounds a relational loop condition.
    kStore,  ///< Handler stores tainted value into unannotated member.
  };
  Kind kind = kIndex;
  std::size_t line = 0;
  std::string what;    ///< The tainted chain or target member.
  std::string detail;  ///< Container / extra context for the message.
};

struct TaintReport {
  std::vector<TaintSink> sinks;
};

/// Analyze one function. `msg_param` is the *Msg parameter name for
/// handlers ("" for ordinary functions, which then only see taint from
/// PREDIS_MSG_DERIVED member reads). Store sinks are only reported for
/// handlers (`is_handler`).
TaintReport analyze_taint(const std::vector<Token>& t, const Function& fn,
                          const Symbols& sym, const std::string& msg_param,
                          bool is_handler);

}  // namespace predis::lint
