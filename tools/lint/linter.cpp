// predis-lint driver: four phases over the file set.
//
//   1. (parallel) load + tokenize + segment each file
//   2. (serial)   merge pair-level symbol tables, collect must-check
//                 names and header declaration diagnostics
//   3. (parallel) run every rule per file into per-file result slots
//   4. (serial)   fold lock-order edges into the global cycle check,
//                 apply suppression pragmas, compute stale ones, sort
//
// Parallelism never changes the output: results land in indexed slots
// and every cross-file structure is folded in path order.
#include "linter.hpp"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <functional>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <tuple>

#include "rules.hpp"

namespace predis::lint {
namespace {

namespace fs = std::filesystem;

std::string pair_key(const std::string& path) {
  const fs::path p(path);
  return (p.parent_path() / p.stem()).string();
}

bool allowed(const SourceFile& file, const Diagnostic& d) {
  if (file.file_allows.count(d.rule) != 0) return true;
  for (std::size_t line : {d.line, d.line == 0 ? d.line : d.line - 1}) {
    const auto it = file.line_allows.find(line);
    if (it != file.line_allows.end() && it->second.count(d.rule) != 0) {
      return true;
    }
  }
  return false;
}

void parallel_for(std::size_t n, unsigned jobs,
                  const std::function<void(std::size_t)>& fn) {
  unsigned workers = jobs != 0 ? jobs
                               : std::max(1u, std::min(
                                     8u, std::thread::hardware_concurrency()));
  workers = static_cast<unsigned>(
      std::min<std::size_t>(workers, n == 0 ? 1 : n));
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::string error;
  std::mutex error_m;
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        if (failed.load()) return;
        try {
          fn(i);
        } catch (const std::exception& e) {
          std::lock_guard<std::mutex> g(error_m);
          if (!failed.exchange(true)) error = e.what();
          return;
        }
      }
    });
  }
  for (std::thread& th : pool) th.join();
  if (failed.load()) throw std::runtime_error(error);
}

struct FileUnit {
  SourceFile src;
  std::vector<Token> tokens;
  std::vector<Function> functions;
  std::vector<Diagnostic> diags;  ///< Raw (pre-allowlist) diagnostics.
  std::vector<LockEdge> edges;
};

/// Deterministic lock-order cycle check: for every edge a->b, search
/// for a path b ~> a over the (sorted, deduplicated) edge set; each
/// distinct cycle is reported once, anchored at its lexicographically
/// first edge.
std::vector<Diagnostic> check_lock_order(std::vector<LockEdge> edges) {
  std::sort(edges.begin(), edges.end(),
            [](const LockEdge& a, const LockEdge& b) {
              return std::tie(a.from, a.to, a.file, a.line) <
                     std::tie(b.from, b.to, b.file, b.line);
            });
  edges.erase(std::unique(edges.begin(), edges.end(),
                          [](const LockEdge& a, const LockEdge& b) {
                            return a.from == b.from && a.to == b.to;
                          }),
              edges.end());
  std::map<std::string, std::vector<std::string>> adj;
  for (const LockEdge& e : edges) adj[e.from].push_back(e.to);

  std::vector<Diagnostic> out;
  std::set<std::string> seen_cycles;
  for (const LockEdge& e : edges) {
    // BFS from e.to back to e.from.
    std::map<std::string, std::string> parent;
    std::vector<std::string> queue{e.to};
    parent[e.to] = "";
    bool found = e.to == e.from;
    for (std::size_t qi = 0; qi < queue.size() && !found; ++qi) {
      const auto it = adj.find(queue[qi]);
      if (it == adj.end()) continue;
      for (const std::string& nxt : it->second) {
        if (parent.count(nxt) != 0) continue;
        parent[nxt] = queue[qi];
        if (nxt == e.from) {
          found = true;
          break;
        }
        queue.push_back(nxt);
      }
    }
    if (!found) continue;
    // Reconstruct the cycle e.from -> e.to ~> e.from.
    std::vector<std::string> path{e.from};
    for (std::string n = e.from; !n.empty() && n != e.to;) {
      n = parent.count(n) != 0 ? parent[n] : std::string();
      if (!n.empty()) path.push_back(n);
    }
    path.push_back(e.from);
    std::reverse(path.begin() + 1, path.end() - 1);
    std::vector<std::string> key_nodes(path.begin(), path.end() - 1);
    std::sort(key_nodes.begin(), key_nodes.end());
    std::string key;
    for (const std::string& n : key_nodes) key += n + "|";
    if (!seen_cycles.insert(key).second) continue;
    std::string chain = path[0];
    for (std::size_t i = 1; i < path.size(); ++i) chain += " -> " + path[i];
    out.push_back({e.file, e.line, "D7",
                   "lock-order cycle: " + chain +
                       ": nested acquisitions must follow one global "
                       "order or this can deadlock"});
  }
  return out;
}

const std::vector<std::string>& known_rules() {
  static const std::vector<std::string> kRules = {
      "D1", "D2", "D3", "D4", "D5", "D6", "D7", "D8", "D9", "S1"};
  return kRules;
}

void append_json_diag(std::ostringstream& os, const Diagnostic& d,
                      bool last) {
  const auto escape = [](const std::string& s) {
    std::string out;
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default: out += c;
      }
    }
    return out;
  };
  os << "  {\"file\": \"" << escape(d.file) << "\", \"line\": " << d.line
     << ", \"rule\": \"" << d.rule << "\", \"message\": \""
     << escape(d.message) << "\"}";
  os << (last ? "\n" : ",\n");
}

}  // namespace

std::vector<std::string> collect_sources(const std::vector<std::string>& roots,
                                         const Options& options) {
  static const std::set<std::string> kExts = {".cpp", ".hpp", ".h", ".cc",
                                              ".hh"};
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    const fs::path p(root);
    if (fs::is_regular_file(p)) {
      files.push_back(p.string());
      continue;
    }
    if (!fs::is_directory(p)) {
      throw std::runtime_error("predis-lint: no such file or directory: " +
                               root);
    }
    fs::recursive_directory_iterator it(p), end;
    while (it != end) {
      const fs::path& entry = it->path();
      const std::string name = entry.filename().string();
      if (it->is_directory()) {
        const bool skip = name.rfind("build", 0) == 0 || name[0] == '.' ||
                          (!options.include_fixtures &&
                           name == "lint_fixtures");
        if (skip) {
          it.disable_recursion_pending();
          ++it;
          continue;
        }
      } else if (kExts.count(entry.extension().string()) != 0) {
        files.push_back(entry.string());
      }
      ++it;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

Report lint_tree(const std::vector<std::string>& files,
                 const Options& options) {
  const std::size_t n = files.size();
  std::vector<FileUnit> units(n);

  // Phase 1 (parallel): load, tokenize, segment.
  parallel_for(n, options.jobs, [&](std::size_t i) {
    units[i].src = load_source(files[i]);
    units[i].tokens = tokenize(units[i].src);
    units[i].functions = segment_functions(units[i].tokens);
  });

  // Phase 2 (serial): pair symbols, must-check names, header decls.
  std::map<std::string, Symbols> pair_symbols;
  for (std::size_t i = 0; i < n; ++i) {
    collect_symbols(units[i].tokens, units[i].src.path,
                    pair_symbols[pair_key(units[i].src.path)]);
  }
  MustCheck must_check;
  for (std::size_t i = 0; i < n; ++i) {
    const Symbols& sym = pair_symbols[pair_key(units[i].src.path)];
    Context ctx{units[i].src,   units[i].tokens, units[i].functions,
                sym,            must_check,      pair_key(units[i].src.path),
                units[i].diags, units[i].edges};
    collect_and_check_declarations(ctx, must_check, /*emit_diagnostics=*/true);
  }

  // Phase 3 (parallel): per-file rules.
  parallel_for(n, options.jobs, [&](std::size_t i) {
    const Symbols& sym = pair_symbols.at(pair_key(units[i].src.path));
    Context ctx{units[i].src,   units[i].tokens, units[i].functions,
                sym,            must_check,      pair_key(units[i].src.path),
                units[i].diags, units[i].edges};
    run_d1(ctx);
    run_d2(ctx);
    run_d3_call_sites(ctx);
    run_d4(ctx);
    run_d5(ctx);
    run_d6(ctx);
    run_d7(ctx);
    run_d8(ctx);
    run_d9(ctx);
  });

  // Phase 4 (serial): lock-order cycles, suppression filter, stale
  // suppression accounting, ordering.
  std::vector<LockEdge> all_edges;
  for (const FileUnit& u : units) {
    all_edges.insert(all_edges.end(), u.edges.begin(), u.edges.end());
  }
  {
    std::vector<Diagnostic> cycles = check_lock_order(std::move(all_edges));
    // Attach cycle diagnostics to their anchoring file's unit so the
    // allowlist applies uniformly.
    for (Diagnostic& d : cycles) {
      for (FileUnit& u : units) {
        if (u.src.path == d.file) {
          u.diags.push_back(std::move(d));
          break;
        }
      }
    }
  }

  Report report;
  report.files_scanned = n;
  for (FileUnit& u : units) {
    // A pragma is "used" when a raw finding of its rule lands on its
    // line or the line below (line pragmas), or anywhere in the file
    // (allow-file). Computed before filtering, so a suppressed finding
    // still justifies its pragma.
    std::set<std::string> file_rules_hit;
    std::map<std::size_t, std::set<std::string>> line_rules_hit;
    for (const Diagnostic& d : u.diags) {
      file_rules_hit.insert(d.rule);
      line_rules_hit[d.line].insert(d.rule);
    }
    for (const Diagnostic& d : u.diags) {
      if (!allowed(u.src, d)) report.diagnostics.push_back(d);
    }
    for (const Pragma& p : u.src.pragmas) {
      bool used = false;
      if (p.whole_file) {
        used = file_rules_hit.count(p.rule) != 0;
      } else {
        for (std::size_t line : {p.line, p.line + 1}) {
          const auto it = line_rules_hit.find(line);
          if (it != line_rules_hit.end() && it->second.count(p.rule) != 0) {
            used = true;
          }
        }
      }
      if (used) continue;
      report.stale_suppressions.push_back(
          {u.src.path, p.line, "S1",
           std::string(p.whole_file ? "allow-file(" : "allow(") + p.rule +
               ") matches no " + p.rule +
               " finding: the suppression is stale, remove it"});
    }
  }

  const auto order = [](const Diagnostic& a, const Diagnostic& b) {
    return std::tie(a.file, a.line, a.rule, a.message) <
           std::tie(b.file, b.line, b.rule, b.message);
  };
  std::sort(report.diagnostics.begin(), report.diagnostics.end(), order);
  std::sort(report.stale_suppressions.begin(),
            report.stale_suppressions.end(), order);

  for (const std::string& r : known_rules()) report.rule_counts[r] = 0;
  for (const Diagnostic& d : report.diagnostics) {
    ++report.rule_counts[d.rule];
  }
  report.rule_counts["S1"] = report.stale_suppressions.size();
  return report;
}

std::vector<Diagnostic> lint_files(const std::vector<std::string>& files) {
  return lint_tree(files, Options{}).diagnostics;
}

std::string to_json(const std::vector<Diagnostic>& diagnostics) {
  std::ostringstream os;
  os << "[\n";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    append_json_diag(os, diagnostics[i], i + 1 == diagnostics.size());
  }
  os << "]\n";
  return os.str();
}

std::string to_json(const Report& report) {
  std::ostringstream os;
  os << "{\n";
  os << "\"schema\": \"predis-lint/2\",\n";
  os << "\"files\": " << report.files_scanned << ",\n";
  os << "\"rule_counts\": {";
  bool first = true;
  for (const auto& [rule, count] : report.rule_counts) {
    os << (first ? "" : ", ") << "\"" << rule << "\": " << count;
    first = false;
  }
  os << "},\n";
  os << "\"findings\": [\n";
  for (std::size_t i = 0; i < report.diagnostics.size(); ++i) {
    append_json_diag(os, report.diagnostics[i],
                     i + 1 == report.diagnostics.size());
  }
  os << "],\n";
  os << "\"stale_suppressions\": [\n";
  for (std::size_t i = 0; i < report.stale_suppressions.size(); ++i) {
    append_json_diag(os, report.stale_suppressions[i],
                     i + 1 == report.stale_suppressions.size());
  }
  os << "]\n";
  os << "}\n";
  return os.str();
}

const char* rule_catalogue() {
  return
      "D1  no unordered_map/unordered_set iteration in protocol-visible\n"
      "    code (send/hash/digest/fold/serialize reachability)\n"
      "D2  no wall clock, std::rand or global RNG outside src/sim and\n"
      "    the seeded rng implementation\n"
      "D3  Expected<T>-returning and non-void try_* APIs are\n"
      "    [[nodiscard]] and their results are never discarded\n"
      "D4  on_* message handlers bounds/ban-check the sender and\n"
      "    message-carried indices before subscripting per-node vectors\n"
      "D5  reinterpret_cast/const_cast only in gf256*, sha256*, bytes*\n"
      "D6  the concrete backend types (Simulator, sim::Network) are\n"
      "    named only under sim/ and runtime/; everything else talks to\n"
      "    runtime::Runtime\n"
      "D7  fields annotated PREDIS_GUARDED_BY(mu) are only accessed\n"
      "    with `mu` held (lock_guard/scoped_lock/unique_lock/manual\n"
      "    lock tracking), and nested acquisitions keep one global\n"
      "    acyclic lock order\n"
      "D8  every Runtime::schedule()/after() TimerHandle is stored and\n"
      "    cancelled on teardown/restart, or explicitly discarded with\n"
      "    PREDIS_FIRE_AND_FORGET (self-guarded tick chains)\n"
      "D9  message-derived values (including PREDIS_MSG_DERIVED member\n"
      "    reads) stay tainted through assignments/aliases/loops until\n"
      "    a kMax* clamp, modulo or dominating bounds check; tainted\n"
      "    values must not index containers, size allocations, bound\n"
      "    relational loops, or be stored into unannotated members\n"
      "S1  every suppression pragma must still match a finding\n"
      "    (stale suppressions are warnings, errors under --strict)\n"
      "\n"
      "Suppressions: an allow(RULE) comment pragma covers its own line\n"
      "and the next; allow-file(RULE) covers the whole file. Syntax and\n"
      "hygiene policy: docs/static_analysis.md.\n";
}

}  // namespace predis::lint
