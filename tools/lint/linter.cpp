#include "linter.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>

namespace predis::lint {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Source preprocessing: blank comments and literals, harvest pragmas.
// ---------------------------------------------------------------------------

struct SourceFile {
  std::string path;
  std::vector<std::string> raw;     ///< Original lines (1-based via index+1).
  std::vector<std::string> code;    ///< Comments/strings blanked to spaces.
  std::map<std::size_t, std::set<std::string>> line_allows;
  std::set<std::string> file_allows;
};

void harvest_pragma(const std::string& comment, std::size_t line,
                    SourceFile& out) {
  static const std::string kTag = "predis-lint:";
  const auto tag = comment.find(kTag);
  if (tag == std::string::npos) return;
  std::string rest = comment.substr(tag + kTag.size());
  const bool whole_file = rest.find("allow-file(") != std::string::npos;
  const auto open = rest.find('(');
  if (open == std::string::npos) return;
  const auto close = rest.find(')', open);
  if (close == std::string::npos) return;
  std::string rules = rest.substr(open + 1, close - open - 1);
  std::string token;
  std::istringstream split(rules);
  while (std::getline(split, token, ',')) {
    const auto b = token.find_first_not_of(" \t");
    const auto e = token.find_last_not_of(" \t");
    if (b == std::string::npos) continue;
    token = token.substr(b, e - b + 1);
    if (whole_file) {
      out.file_allows.insert(token);
    } else {
      out.line_allows[line].insert(token);
    }
  }
}

/// Blank // and /* */ comments, "..." and '...' literals. Comment text
/// is scanned for allowlist pragmas before it is dropped.
SourceFile load_source(const std::string& path) {
  SourceFile out;
  out.path = path;
  std::ifstream in(path);
  if (!in) throw std::runtime_error("predis-lint: cannot open " + path);
  std::string line;
  while (std::getline(in, line)) out.raw.push_back(line);

  bool in_block_comment = false;
  for (std::size_t li = 0; li < out.raw.size(); ++li) {
    const std::string& src = out.raw[li];
    std::string code(src.size(), ' ');
    std::size_t i = 0;
    while (i < src.size()) {
      if (in_block_comment) {
        const auto end = src.find("*/", i);
        const std::size_t stop = end == std::string::npos ? src.size() : end;
        harvest_pragma(src.substr(i, stop - i), li + 1, out);
        if (end == std::string::npos) {
          i = src.size();
        } else {
          in_block_comment = false;
          i = end + 2;
        }
        continue;
      }
      const char c = src[i];
      if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
        harvest_pragma(src.substr(i + 2), li + 1, out);
        break;  // rest of line is comment
      }
      if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
        in_block_comment = true;
        i += 2;
        continue;
      }
      if (c == '"' || c == '\'') {
        const char quote = c;
        code[i] = quote;
        ++i;
        while (i < src.size()) {
          if (src[i] == '\\') {
            i += 2;
            continue;
          }
          if (src[i] == quote) {
            code[i] = quote;
            ++i;
            break;
          }
          ++i;
        }
        continue;
      }
      code[i] = c;
      ++i;
    }
    out.code.push_back(code);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Tokenizer.
// ---------------------------------------------------------------------------

struct Token {
  std::string text;
  std::size_t line = 0;
  bool ident = false;
};

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_char(char c) {
  return ident_start(c) || std::isdigit(static_cast<unsigned char>(c)) != 0;
}

std::vector<Token> tokenize(const SourceFile& file) {
  std::vector<Token> tokens;
  for (std::size_t li = 0; li < file.code.size(); ++li) {
    const std::string& s = file.code[li];
    std::size_t i = 0;
    while (i < s.size()) {
      const char c = s[i];
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++i;
        continue;
      }
      if (ident_start(c)) {
        std::size_t j = i + 1;
        while (j < s.size() && ident_char(s[j])) ++j;
        tokens.push_back({s.substr(i, j - i), li + 1, true});
        i = j;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        std::size_t j = i + 1;
        while (j < s.size() &&
               (ident_char(s[j]) || s[j] == '.' || s[j] == '\'')) {
          ++j;
        }
        tokens.push_back({s.substr(i, j - i), li + 1, false});
        i = j;
        continue;
      }
      // Two-character operators the rules care about.
      if (i + 1 < s.size()) {
        const std::string two = s.substr(i, 2);
        if (two == "::" || two == "->" || two == "&&" || two == "||" ||
            two == "==" || two == "!=" || two == ">=" || two == "<=") {
          tokens.push_back({two, li + 1, false});
          i += 2;
          continue;
        }
      }
      tokens.push_back({std::string(1, c), li + 1, false});
      ++i;
    }
  }
  return tokens;
}

/// Index of the token matching the opener at `open` ("(", "[", "{"),
/// or tokens.size() when unbalanced.
std::size_t match_forward(const std::vector<Token>& t, std::size_t open) {
  const std::string& o = t[open].text;
  const std::string c = o == "(" ? ")" : o == "[" ? "]" : "}";
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].text == o) ++depth;
    if (t[i].text == c && --depth == 0) return i;
  }
  return t.size();
}

/// Skip a balanced template argument list starting at `i` (which must
/// point at "<"). Returns the index one past the closing ">", or `i`
/// if the list never closes (comparison operator, not a template).
std::size_t skip_template_args(const std::vector<Token>& t, std::size_t i) {
  if (i >= t.size() || t[i].text != "<") return i;
  int depth = 0;
  std::size_t j = i;
  // Bound the scan: a genuine template argument list in this codebase
  // never spans more than a few lines.
  const std::size_t limit = std::min(t.size(), i + 256);
  while (j < limit) {
    if (t[j].text == "<") ++depth;
    if (t[j].text == ">" && --depth == 0) return j + 1;
    if (t[j].text == ";") return i;  // statement ended: was a comparison
    ++j;
  }
  return i;
}

// ---------------------------------------------------------------------------
// Symbol collection.
// ---------------------------------------------------------------------------

/// Per file-pair (foo.hpp + foo.cpp) view of declared names.
struct Symbols {
  std::set<std::string> unordered_vars;   ///< unordered_{map,set} variables.
  std::set<std::string> unordered_types;  ///< using aliases of those types.
  std::set<std::string> vector_vars;      ///< std::vector variables.
};

void collect_symbols(const std::vector<Token>& t, Symbols& sym) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    const bool is_unordered =
        t[i].text == "unordered_map" || t[i].text == "unordered_set";
    const bool is_vector = t[i].text == "vector";
    const bool is_alias =
        t[i].ident && sym.unordered_types.count(t[i].text) != 0;
    if (!is_unordered && !is_vector && !is_alias) continue;

    // `using Alias = std::unordered_map<...>;` — record the alias name.
    if (is_unordered && i >= 2 && t[i - 1].text == "::" &&
        i >= 4 && t[i - 3].text == "=" && t[i - 4].ident &&
        i >= 5 && t[i - 5].text == "using") {
      sym.unordered_types.insert(t[i - 4].text);
      continue;
    }
    if (is_unordered && i >= 2 && t[i - 1].text == "=" && t[i - 2].ident &&
        i >= 3 && t[i - 3].text == "using") {
      sym.unordered_types.insert(t[i - 2].text);
      continue;
    }

    std::size_t j = i + 1;
    if (j < t.size() && t[j].text == "<") {
      const std::size_t after = skip_template_args(t, j);
      if (after == j) continue;  // comparison, not a declaration
      j = after;
    } else if (is_unordered || is_vector) {
      continue;  // bare mention without template args
    }
    // Declarator: optional &/*, then the variable name, terminated by
    // ; = { ( — `(` covers `std::vector<T> name(n)` constructor syntax.
    while (j < t.size() && (t[j].text == "&" || t[j].text == "*")) ++j;
    if (j + 1 >= t.size() || !t[j].ident) continue;
    const std::string& next = t[j + 1].text;
    if (next != ";" && next != "=" && next != "{" && next != "(") continue;
    if (is_vector) {
      sym.vector_vars.insert(t[j].text);
    } else {
      sym.unordered_vars.insert(t[j].text);
    }
  }
}

/// Names of project functions whose results must not be discarded
/// (non-void try_* and Expected<T>-returning declarations), collected
/// across every scanned header.
using MustCheck = std::set<std::string>;

const std::set<std::string>& std_try_names() {
  static const std::set<std::string> kNames = {
      "try_emplace", "try_lock",    "try_lock_for", "try_lock_until",
      "try_acquire", "try_wait",    "try_to_lock",
  };
  return kNames;
}

/// Walk back from a candidate declaration name to the statement
/// boundary, collecting the return-type span. Returns nullopt when the
/// site is an expression (call), not a declaration.
std::optional<std::vector<std::string>> decl_span_before(
    const std::vector<Token>& t, std::size_t name_idx) {
  static const std::set<std::string> kExprMarkers = {
      "=",  "!",  "(", ",",  "return", ".",  "->", "?",  "+",  "-",
      "/",  "==", "!=", "<=", ">=",     "&&", "||", "if", "while",
      "for", "switch", "case", "throw"};
  std::vector<std::string> span;
  std::size_t i = name_idx;
  while (i > 0) {
    --i;
    const std::string& x = t[i].text;
    if (x == ";" || x == "{" || x == "}") break;
    // Access specifiers end the span too (public: / private:).
    if (x == ":" && i > 0 &&
        (t[i - 1].text == "public" || t[i - 1].text == "private" ||
         t[i - 1].text == "protected")) {
      break;
    }
    if (kExprMarkers.count(x) != 0) return std::nullopt;
    span.push_back(x);
    if (span.size() > 24) break;  // runaway: treat what we have as the span
  }
  return span;
}

bool span_has(const std::vector<std::string>& span, const std::string& word) {
  return std::find(span.begin(), span.end(), word) != span.end();
}

// ---------------------------------------------------------------------------
// Function segmentation.
// ---------------------------------------------------------------------------

struct Function {
  std::string name;
  std::size_t params_open = 0;  ///< Index of "(".
  std::size_t params_close = 0;
  std::size_t body_open = 0;    ///< Index of "{".
  std::size_t body_close = 0;
};

const std::set<std::string>& control_keywords() {
  static const std::set<std::string> kWords = {
      "if", "for", "while", "switch", "catch", "return", "new",
      "delete", "sizeof", "case", "do", "else"};
  return kWords;
}

/// Best-effort function-definition finder: `name ( ... ) [qualifiers] {`.
/// Constructor initializer lists are skipped by balancing parens and
/// member brace-inits until the body brace.
std::vector<Function> segment_functions(const std::vector<Token>& t) {
  std::vector<Function> out;
  std::size_t skip_until = 0;  // inside a recorded body: no nested starts
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (i < skip_until) continue;
    if (!t[i].ident || t[i + 1].text != "(") continue;
    if (control_keywords().count(t[i].text) != 0) continue;
    if (i > 0) {
      const std::string& prev = t[i - 1].text;
      static const std::set<std::string> kCallContext = {
          ".", "->", "(", ",", "=",  "!",  "return", "&&", "||", "?",
          "+", "-",  "/", "<", "==", "!=", "<=",     ">=", "case"};
      if (kCallContext.count(prev) != 0) continue;
    }
    const std::size_t close = match_forward(t, i + 1);
    if (close >= t.size()) continue;
    // Scan past trailing qualifiers and any constructor initializer
    // list to the body brace (or bail at ; for pure declarations).
    std::size_t j = close + 1;
    bool found_body = false;
    while (j < t.size()) {
      const std::string& x = t[j].text;
      if (x == ";" || x == "}") break;
      if (x == "{") {
        // Member brace-init (`member_{...}`) is preceded by an ident;
        // the body brace is preceded by ) / qualifier / init-list end.
        if (t[j - 1].ident && j > close + 1 &&
            control_keywords().count(t[j - 1].text) == 0 &&
            t[j - 1].text != "const" && t[j - 1].text != "noexcept" &&
            t[j - 1].text != "override" && t[j - 1].text != "final") {
          const std::size_t skip = match_forward(t, j);
          if (skip >= t.size()) break;
          j = skip + 1;
          continue;
        }
        found_body = true;
        break;
      }
      if (x == "(") {  // noexcept(...) or initializer argument list
        const std::size_t skip = match_forward(t, j);
        if (skip >= t.size()) break;
        j = skip + 1;
        continue;
      }
      ++j;
    }
    if (!found_body) continue;
    const std::size_t body_close = match_forward(t, j);
    if (body_close >= t.size()) continue;
    out.push_back({t[i].text, i + 1, close, j, body_close});
    skip_until = body_close;  // lambdas stay inside the enclosing body
  }
  return out;
}

// ---------------------------------------------------------------------------
// Identifier chains ("msg.index", "it->second.relayed").
// ---------------------------------------------------------------------------

/// Chain of the identifier starting at `i`, following . -> :: forwards.
std::string chain_starting_at(const std::vector<Token>& t, std::size_t i,
                              std::size_t limit) {
  std::string chain = t[i].text;
  std::size_t j = i;
  while (j + 2 < limit &&
         (t[j + 1].text == "." || t[j + 1].text == "->" ||
          t[j + 1].text == "::") &&
         t[j + 2].ident) {
    chain += t[j + 1].text + t[j + 2].text;
    j += 2;
  }
  return chain;
}

// ---------------------------------------------------------------------------
// The rules.
// ---------------------------------------------------------------------------

struct Context {
  const SourceFile& file;
  const std::vector<Token>& tokens;
  const Symbols& symbols;
  const MustCheck& must_check;
  std::vector<Diagnostic>& out;
};

void emit(Context& ctx, std::size_t line, const std::string& rule,
          std::string message) {
  ctx.out.push_back({ctx.file.path, line, rule, std::move(message)});
}

bool basename_starts_with_any(const std::string& path,
                              const std::vector<std::string>& prefixes) {
  const std::string base = fs::path(path).filename().string();
  for (const std::string& p : prefixes) {
    if (base.rfind(p, 0) == 0) return true;
  }
  return false;
}

// --- D1: unordered iteration in protocol-visible code ---------------------

bool is_protocol_sink(const std::string& ident) {
  static const std::set<std::string> kExact = {
      "send",  "broadcast", "multicast",  "zone_multicast", "Sha256",
      "sha256", "hash",     "hash_pair",  "digest",         "Writer",
      "Merkle", "MerkleTree", "prove",    "prove_into",     "update"};
  if (kExact.count(ident) != 0) return true;
  return ident.rfind("record", 0) == 0 || ident.rfind("fold", 0) == 0 ||
         ident.rfind("serialize", 0) == 0 || ident.rfind("encode", 0) == 0 ||
         ident.rfind("emit", 0) == 0;
}

void run_d1(Context& ctx) {
  const std::vector<Token>& t = ctx.tokens;
  for (const Function& fn : segment_functions(t)) {
    // Does this function feed protocol-visible bytes at all?
    std::string sink;
    for (std::size_t i = fn.body_open; i <= fn.body_close; ++i) {
      if (t[i].ident && is_protocol_sink(t[i].text)) {
        sink = t[i].text;
        break;
      }
    }
    if (sink.empty()) continue;
    for (std::size_t i = fn.body_open; i < fn.body_close; ++i) {
      if (t[i].text != "for" || t[i + 1].text != "(") continue;
      const std::size_t close = match_forward(t, i + 1);
      if (close >= t.size()) continue;
      std::string iterated;
      // Range-for: single ":" at paren depth 1.
      int depth = 0;
      for (std::size_t j = i + 1; j < close; ++j) {
        if (t[j].text == "(") ++depth;
        if (t[j].text == ")") --depth;
        if (t[j].text == ":" && depth == 1 && j + 1 < close && t[j + 1].ident) {
          const std::string chain = chain_starting_at(t, j + 1, close);
          const auto last = chain.find_last_of(">.:");
          const std::string leaf =
              last == std::string::npos ? chain : chain.substr(last + 1);
          if (ctx.symbols.unordered_vars.count(leaf) != 0) iterated = chain;
          break;
        }
      }
      // Iterator loop: `for (auto it = container.begin(); ...`.
      if (iterated.empty()) {
        for (std::size_t j = i + 2; j + 2 < close; ++j) {
          if (t[j].ident && ctx.symbols.unordered_vars.count(t[j].text) != 0 &&
              (t[j + 1].text == "." || t[j + 1].text == "->") &&
              t[j + 2].text == "begin") {
            iterated = t[j].text;
            break;
          }
          if (t[j].text == ";") break;  // only the init clause
        }
      }
      if (iterated.empty()) continue;
      emit(ctx, t[i].line, "D1",
           "iteration over unordered container '" + iterated +
               "' in protocol-visible code (function '" + fn.name +
               "' also reaches '" + sink +
               "'): iteration order leaks into emitted bytes; use std::map "
               "or sort before emitting");
    }
  }
}

// --- D2: wall clock / global RNG outside the simulator --------------------

void run_d2(Context& ctx) {
  const std::string generic = fs::path(ctx.file.path).generic_string();
  if (generic.find("/sim/") != std::string::npos) return;
  if (basename_starts_with_any(ctx.file.path, {"rng."})) return;

  static const std::set<std::string> kBanned = {
      "srand",        "random_device", "mt19937",
      "mt19937_64",   "default_random_engine", "minstd_rand",
      "minstd_rand0", "system_clock",  "steady_clock",
      "high_resolution_clock", "gettimeofday", "clock_gettime",
      "timespec_get", "localtime",     "gmtime", "mktime"};
  const std::vector<Token>& t = ctx.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!t[i].ident) continue;
    if (kBanned.count(t[i].text) != 0) {
      emit(ctx, t[i].line, "D2",
           "'" + t[i].text +
               "' outside sim/: all time and randomness must flow through "
               "the simulator clock and the seeded Rng");
      continue;
    }
    if ((t[i].text == "rand" || t[i].text == "clock" ||
         t[i].text == "time") &&
        i + 1 < t.size() && t[i + 1].text == "(") {
      // `rand()` / `clock()` / `time(nullptr)` — require a call so that
      // variables named `time` in other positions stay legal.
      if (i > 0 && (t[i - 1].text == "." || t[i - 1].text == "->")) continue;
      if (t[i].text == "time") {
        const std::string& arg = i + 2 < t.size() ? t[i + 2].text : "";
        if (arg != "nullptr" && arg != "NULL" && arg != "0") continue;
      }
      emit(ctx, t[i].line, "D2",
           "'" + t[i].text +
               "()' outside sim/: wall-clock time and the C RNG break "
               "seeded replay");
    }
  }
}

// --- D3: nodiscard on Expected / try_* APIs, no discarded results ---------

bool is_header(const std::string& path) {
  const std::string ext = fs::path(path).extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".hh";
}

/// First pass over a header: record must-check names and report
/// missing [[nodiscard]] annotations.
void collect_and_check_declarations(Context& ctx, MustCheck& must_check,
                                    bool emit_diagnostics) {
  if (!is_header(ctx.file.path)) return;
  const std::vector<Token>& t = ctx.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!t[i].ident || t[i + 1].text != "(") continue;
    const std::string& name = t[i].text;
    const bool try_name =
        name.rfind("try_", 0) == 0 && std_try_names().count(name) == 0;
    if (!try_name) continue;
    const auto span = decl_span_before(t, i);
    if (!span) continue;              // expression/call site
    if (span->empty()) continue;      // no return type: a call statement
    if (span_has(*span, "void") && !span_has(*span, "*")) continue;
    if (span_has(*span, "using") || span_has(*span, "typedef")) continue;
    must_check.insert(name);
    if (emit_diagnostics && !span_has(*span, "nodiscard")) {
      emit(ctx, t[i].line, "D3",
           "non-void '" + name +
               "' must be [[nodiscard]]: try_* results carry the only "
               "failure signal");
    }
  }
  // Expected<...>-returning declarations, whatever their name.
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].text != "Expected" || t[i + 1].text != "<") continue;
    const std::size_t after = skip_template_args(t, i + 1);
    if (after == i + 1 || after + 1 >= t.size()) continue;
    if (!t[after].ident || t[after + 1].text != "(") continue;
    const auto span = decl_span_before(t, i);
    if (!span) continue;
    must_check.insert(t[after].text);
    // try_* names were already checked (and reported) by the pass above.
    if (t[after].text.rfind("try_", 0) == 0) continue;
    if (emit_diagnostics && !span_has(*span, "nodiscard")) {
      emit(ctx, t[after].line, "D3",
           "'" + t[after].text +
               "' returns Expected<T> and must be [[nodiscard]]");
    }
  }
}

void run_d3_call_sites(Context& ctx) {
  const std::vector<Token>& t = ctx.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!t[i].ident || t[i + 1].text != "(") continue;
    if (ctx.must_check.count(t[i].text) == 0) continue;
    const std::size_t close = match_forward(t, i + 1);
    if (close + 1 >= t.size() || t[close + 1].text != ";") continue;
    // Walk back over the object chain to the statement start.
    std::size_t j = i;
    while (j >= 2 && (t[j - 1].text == "." || t[j - 1].text == "->")) {
      if (t[j - 2].text == ")") {  // chained call result: f().try_x()
        int depth = 0;
        std::size_t k = j - 2;
        while (k > 0) {
          if (t[k].text == ")") ++depth;
          if (t[k].text == "(" && --depth == 0) break;
          --k;
        }
        if (k == 0 || !t[k - 1].ident) break;
        j = k - 1;
        continue;
      }
      if (!t[j - 2].ident) break;
      j -= 2;
    }
    if (j == 0) continue;
    const std::string& before = t[j - 1].text;
    if (before == ";" || before == "{" || before == "}") {
      emit(ctx, t[i].line, "D3",
           "result of '" + t[i].text +
               "()' is discarded: the Expected<T>/try_* contract requires "
               "checking the outcome (cast to void to discard on purpose)");
    }
  }
}

// --- D4: sender / message-index bounds checks in on_* handlers ------------

void run_d4(Context& ctx) {
  const std::vector<Token>& t = ctx.tokens;
  for (const Function& fn : segment_functions(t)) {
    if (fn.name.rfind("on_", 0) != 0) continue;
    // Split parameters at top level; find a sender id and a *Msg param.
    std::vector<std::pair<std::size_t, std::size_t>> params;
    {
      int depth = 0;
      std::size_t start = fn.params_open + 1;
      for (std::size_t i = fn.params_open + 1; i <= fn.params_close; ++i) {
        if (t[i].text == "(" || t[i].text == "<" || t[i].text == "[") ++depth;
        if (t[i].text == ")" || t[i].text == ">" || t[i].text == "]") --depth;
        if ((t[i].text == "," && depth == 0) || i == fn.params_close) {
          if (i > start) params.emplace_back(start, i);
          start = i + 1;
        }
      }
    }
    std::string sender;
    std::string msg_param;
    for (const auto& [b, e] : params) {
      bool id_type = false;
      bool msg_type = false;
      std::string last_ident;
      std::string prev_ident;
      for (std::size_t i = b; i < e; ++i) {
        if (!t[i].ident) continue;
        if (t[i].text == "NodeId" || t[i].text == "size_t") id_type = true;
        if (t[i].text.size() >= 3 &&
            t[i].text.find("Msg") != std::string::npos) {
          msg_type = true;
        }
        prev_ident = last_ident;
        last_ident = t[i].text;
      }
      // The name is the last identifier, provided it isn't the type
      // itself (unnamed parameters drop out here).
      if (id_type && sender.empty() && !prev_ident.empty() &&
          last_ident != "NodeId" && last_ident != "size_t") {
        sender = last_ident;
      }
      if (msg_type && !last_ident.empty() &&
          last_ident.find("Msg") == std::string::npos) {
        msg_param = last_ident;
      }
    }
    if (msg_param.empty()) continue;  // not a network message handler

    // Untrusted values: the sender id, msg.field chains, and range-for
    // variables drawn from msg fields. An `if (...)`/assert mentioning
    // the value marks it checked from that point on.
    std::set<std::string> untrusted;
    std::set<std::string> checked;
    if (!sender.empty()) untrusted.insert(sender);
    for (std::size_t i = fn.body_open + 1; i < fn.body_close; ++i) {
      const std::string& x = t[i].text;
      // New range-for over a msg field re-arms the loop variable.
      if (x == "for" && i + 1 < fn.body_close && t[i + 1].text == "(") {
        const std::size_t close = match_forward(t, i + 1);
        int depth = 0;
        for (std::size_t j = i + 1; j < close; ++j) {
          if (t[j].text == "(") ++depth;
          if (t[j].text == ")") --depth;
          if (t[j].text == ":" && depth == 1 && j + 1 < close &&
              t[j + 1].ident && j >= 1 && t[j - 1].ident) {
            const std::string seq = chain_starting_at(t, j + 1, close);
            if (!msg_param.empty() &&
                seq.rfind(msg_param + ".", 0) == 0) {
              untrusted.insert(t[j - 1].text);
              checked.erase(t[j - 1].text);
            }
            break;
          }
        }
        continue;
      }
      // Guards: if (... value ...) or assert(... value ...).
      if ((x == "if" || x == "assert") && i + 1 < fn.body_close &&
          t[i + 1].text == "(") {
        const std::size_t close = match_forward(t, i + 1);
        for (std::size_t j = i + 2; j < close; ++j) {
          if (!t[j].ident) continue;
          const std::string chain = chain_starting_at(t, j, close);
          for (const std::string& u : untrusted) {
            if (t[j].text == u || chain == u) checked.insert(u);
          }
          // Guarding a msg chain ("if (msg.index >= n) return;").
          if (!msg_param.empty() && chain.rfind(msg_param + ".", 0) == 0) {
            checked.insert(chain);
          }
        }
        i = close;
        continue;
      }
      // Subscript of a per-node vector by an untrusted value.
      if (t[i].ident && ctx.symbols.vector_vars.count(x) != 0 &&
          i + 1 < fn.body_close && t[i + 1].text == "[") {
        const std::size_t close = match_forward(t, i + 1);
        for (std::size_t j = i + 2; j < close; ++j) {
          if (!t[j].ident) continue;
          const std::string chain = chain_starting_at(t, j, close);
          const bool is_msg_chain =
              !msg_param.empty() && chain.rfind(msg_param + ".", 0) == 0;
          const std::string key = is_msg_chain ? chain : t[j].text;
          if ((untrusted.count(key) != 0 || is_msg_chain) &&
              checked.count(key) == 0) {
            emit(ctx, t[j].line, "D4",
                 "handler '" + fn.name + "' indexes vector '" + x +
                     "' with unchecked '" + key +
                     "': bounds/ban-check sender and message-carried "
                     "indices before touching per-node state");
            checked.insert(key);  // one report per value
          }
        }
      }
    }
  }
}

// --- D4 span sub-check: message-derived walks must be kMax*-clamped -------

// A catch-up / fetch handler that walks positions taken from a message
// ("send me everything above have_seq") must clamp the walk with a
// kMax* span constant (kMaxCatchUpSpan, kMaxBlockSpan, kMaxFetchSpan,
// ...) in the loop condition: an unclamped walk lets a single hostile
// request serve or fetch an unbounded log span. Covers on_* handlers
// plus the dispatcher-style `handle` methods (the Predis engine).
void run_d4_spans(Context& ctx) {
  const std::vector<Token>& t = ctx.tokens;
  for (const Function& fn : segment_functions(t)) {
    if (fn.name.rfind("on_", 0) != 0 && fn.name != "handle") continue;
    // Find the message parameter, as in run_d4.
    std::vector<std::pair<std::size_t, std::size_t>> params;
    {
      int depth = 0;
      std::size_t start = fn.params_open + 1;
      for (std::size_t i = fn.params_open + 1; i <= fn.params_close; ++i) {
        if (t[i].text == "(" || t[i].text == "<" || t[i].text == "[") ++depth;
        if (t[i].text == ")" || t[i].text == ">" || t[i].text == "]") --depth;
        if ((t[i].text == "," && depth == 0) || i == fn.params_close) {
          if (i > start) params.emplace_back(start, i);
          start = i + 1;
        }
      }
    }
    std::string msg_param;
    for (const auto& [b, e] : params) {
      bool msg_type = false;
      std::string last_ident;
      for (std::size_t i = b; i < e; ++i) {
        if (!t[i].ident) continue;
        if (t[i].text.find("Msg") != std::string::npos) msg_type = true;
        last_ident = t[i].text;
      }
      if (msg_type && !last_ident.empty() &&
          last_ident.find("Msg") == std::string::npos) {
        msg_param = last_ident;
      }
    }
    if (msg_param.empty()) continue;

    // Values derived from a message field without a kMax* clamp on the
    // same right-hand side.
    std::set<std::string> span_tainted;
    const auto benign_chain = [](const std::string& chain) {
      const auto cut = chain.find_last_of(".>");
      const std::string leaf =
          cut == std::string::npos ? chain : chain.substr(cut + 1);
      return leaf == "size" || leaf == "count" || leaf == "empty";
    };
    const auto is_msg_chain = [&](const std::string& chain) {
      return chain.rfind(msg_param + ".", 0) == 0 ||
             chain.rfind(msg_param + "->", 0) == 0;
    };
    // Scan [b, e) for message-derived values and kMax* clamps.
    const auto scan = [&](std::size_t b, std::size_t e, bool& taint,
                          bool& kmax) {
      for (std::size_t j = b; j < e; ++j) {
        if (!t[j].ident) continue;
        if (t[j].text.rfind("kMax", 0) == 0) {
          kmax = true;
          continue;
        }
        const std::string chain = chain_starting_at(t, j, e);
        if (benign_chain(chain)) continue;  // container-size bounds
        if (span_tainted.count(t[j].text) != 0 || is_msg_chain(chain)) {
          taint = true;
        }
      }
    };

    for (std::size_t i = fn.body_open + 1; i < fn.body_close; ++i) {
      const std::string& x = t[i].text;
      if ((x == "for" || x == "while") && i + 1 < fn.body_close &&
          t[i + 1].text == "(") {
        const std::size_t close = match_forward(t, i + 1);
        std::size_t cond_b = i + 2;
        std::size_t cond_e = close;
        if (x == "for") {
          std::vector<std::size_t> semis;
          int depth = 0;
          for (std::size_t j = i + 2; j < close; ++j) {
            if (t[j].text == "(" || t[j].text == "[") ++depth;
            if (t[j].text == ")" || t[j].text == "]") --depth;
            if (t[j].text == ";" && depth == 0) semis.push_back(j);
          }
          // Range-for: bounded by the received container, exempt here
          // (run_d4 checks what the elements index into).
          if (semis.size() < 2) continue;
          // `for (SeqNum s = msg.have_seq; ...` taints the loop var; a
          // clean re-init of a previously tainted name clears it.
          for (std::size_t j = i + 3; j < semis[0]; ++j) {
            if (t[j].text == "=" && t[j - 1].ident) {
              bool taint = false;
              bool kmax = false;
              scan(j + 1, semis[0], taint, kmax);
              if (taint && !kmax) {
                span_tainted.insert(t[j - 1].text);
              } else {
                span_tainted.erase(t[j - 1].text);
              }
              break;
            }
          }
          cond_b = semis[0] + 1;
          cond_e = semis[1];
        }
        bool taint = false;
        bool kmax = false;
        scan(cond_b, cond_e, taint, kmax);
        if (taint && !kmax) {
          emit(ctx, t[i].line, "D4",
               "handler '" + fn.name +
                   "' walks a message-derived span without a kMax* clamp "
                   "in the loop condition: bound catch-up/fetch spans "
                   "(kMaxCatchUpSpan-style constants) before serving "
                   "them");
        }
        i = close;
        continue;
      }
      // Assignment / init: an expression mentioning a message field
      // taints the assignee unless a kMax* clamp appears on the same
      // right-hand side (the std::min clamp idiom); a later clamped
      // re-assignment clears the taint.
      if (x == "=" && i >= 1 && t[i - 1].ident) {
        std::size_t end = i + 1;
        int depth = 0;
        while (end < fn.body_close) {
          const std::string& y = t[end].text;
          if (y == "(" || y == "[" || y == "{") ++depth;
          if (y == ")" || y == "]" || y == "}") --depth;
          if (y == ";" && depth <= 0) break;
          ++end;
        }
        bool taint = false;
        bool kmax = false;
        scan(i + 1, end, taint, kmax);
        if (taint && !kmax) {
          span_tainted.insert(t[i - 1].text);
        } else {
          span_tainted.erase(t[i - 1].text);
        }
        i = end;
        continue;
      }
    }
  }
}

// --- D5: reinterpret_cast / const_cast fenced into approved TUs -----------

void run_d5(Context& ctx) {
  if (basename_starts_with_any(ctx.file.path, {"gf256", "sha256", "bytes"})) {
    return;
  }
  for (const Token& tok : ctx.tokens) {
    if (tok.text == "reinterpret_cast" || tok.text == "const_cast") {
      emit(ctx, tok.line, "D5",
           "'" + tok.text +
               "' outside the approved low-level TUs (gf256*, sha256*, "
               "bytes*): route byte reinterpretation through common/bytes "
               "helpers");
    }
  }
}

// --- D6: backend types fenced behind the Runtime seam ----------------------

void run_d6(Context& ctx) {
  // The simulator and the runtime layer (SimRuntime wraps the backend,
  // ThreadRuntime mirrors it) are the only places allowed to spell the
  // concrete backend types; tests/sim exercises the backend directly.
  const std::string generic = fs::path(ctx.file.path).generic_string();
  if (generic.find("/sim/") != std::string::npos) return;
  if (generic.find("/runtime/") != std::string::npos) return;

  const std::vector<Token>& t = ctx.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!t[i].ident) continue;
    if (t[i].text == "Simulator") {
      emit(ctx, t[i].line, "D6",
           "'Simulator' outside sim//runtime/: drive scenarios through "
           "the Runtime interface (runtime::SimRuntime for the "
           "deterministic backend)");
      continue;
    }
    if (t[i].text == "sim" && i + 2 < t.size() && t[i + 1].text == "::" &&
        t[i + 2].text == "Network") {
      emit(ctx, t[i].line, "D6",
           "'sim::Network' outside sim//runtime/: protocol and harness "
           "code must talk to runtime::Runtime so every backend can "
           "carry it");
    }
  }
}

// ---------------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------------

std::string pair_key(const std::string& path) {
  const fs::path p(path);
  return (p.parent_path() / p.stem()).string();
}

bool allowed(const SourceFile& file, const Diagnostic& d) {
  if (file.file_allows.count(d.rule) != 0) return true;
  for (std::size_t line : {d.line, d.line == 0 ? d.line : d.line - 1}) {
    const auto it = file.line_allows.find(line);
    if (it != file.line_allows.end() && it->second.count(d.rule) != 0) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::vector<std::string> collect_sources(const std::vector<std::string>& roots,
                                         const Options& options) {
  static const std::set<std::string> kExts = {".cpp", ".hpp", ".h", ".cc",
                                              ".hh"};
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    const fs::path p(root);
    if (fs::is_regular_file(p)) {
      files.push_back(p.string());
      continue;
    }
    if (!fs::is_directory(p)) {
      throw std::runtime_error("predis-lint: no such file or directory: " +
                               root);
    }
    fs::recursive_directory_iterator it(p), end;
    while (it != end) {
      const fs::path& entry = it->path();
      const std::string name = entry.filename().string();
      if (it->is_directory()) {
        const bool skip = name.rfind("build", 0) == 0 || name[0] == '.' ||
                          (!options.include_fixtures &&
                           name == "lint_fixtures");
        if (skip) {
          it.disable_recursion_pending();
          ++it;
          continue;
        }
      } else if (kExts.count(entry.extension().string()) != 0) {
        files.push_back(entry.string());
      }
      ++it;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

std::vector<Diagnostic> lint_files(const std::vector<std::string>& files) {
  // Load and tokenize everything once; collect symbols per header/impl
  // pair and must-check names globally.
  std::vector<SourceFile> sources;
  std::vector<std::vector<Token>> tokens;
  sources.reserve(files.size());
  for (const std::string& f : files) {
    sources.push_back(load_source(f));
    tokens.push_back(tokenize(sources.back()));
  }

  std::map<std::string, Symbols> pair_symbols;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    collect_symbols(tokens[i], pair_symbols[pair_key(sources[i].path)]);
  }

  MustCheck must_check;
  std::vector<Diagnostic> all;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const Symbols& sym = pair_symbols[pair_key(sources[i].path)];
    Context ctx{sources[i], tokens[i], sym, must_check, all};
    collect_and_check_declarations(ctx, must_check, /*emit_diagnostics=*/true);
  }
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const Symbols& sym = pair_symbols[pair_key(sources[i].path)];
    Context ctx{sources[i], tokens[i], sym, must_check, all};
    run_d1(ctx);
    run_d2(ctx);
    run_d3_call_sites(ctx);
    run_d4(ctx);
    run_d4_spans(ctx);
    run_d5(ctx);
    run_d6(ctx);
  }

  // Apply allowlist pragmas, then order by (file, line, rule).
  std::map<std::string, const SourceFile*> by_path;
  for (const SourceFile& s : sources) by_path[s.path] = &s;
  std::vector<Diagnostic> kept;
  for (Diagnostic& d : all) {
    if (!allowed(*by_path.at(d.file), d)) kept.push_back(std::move(d));
  }
  std::sort(kept.begin(), kept.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return kept;
}

std::string to_json(const std::vector<Diagnostic>& diagnostics) {
  const auto escape = [](const std::string& s) {
    std::string out;
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default: out += c;
      }
    }
    return out;
  };
  std::ostringstream os;
  os << "[\n";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    os << "  {\"file\": \"" << escape(d.file) << "\", \"line\": " << d.line
       << ", \"rule\": \"" << d.rule << "\", \"message\": \""
       << escape(d.message) << "\"}";
    os << (i + 1 == diagnostics.size() ? "\n" : ",\n");
  }
  os << "]\n";
  return os.str();
}

const char* rule_catalogue() {
  return
      "D1  no unordered_map/unordered_set iteration in protocol-visible\n"
      "    code (send/hash/digest/fold/serialize reachability)\n"
      "D2  no wall clock, std::rand or global RNG outside src/sim and\n"
      "    the seeded rng implementation\n"
      "D3  Expected<T>-returning and non-void try_* APIs are\n"
      "    [[nodiscard]] and their results are never discarded\n"
      "D4  on_* message handlers bounds/ban-check the sender and\n"
      "    message-carried indices before subscripting per-node vectors,\n"
      "    and clamp message-derived span walks with a kMax* constant\n"
      "D5  reinterpret_cast/const_cast only in gf256*, sha256*, bytes*\n"
      "D6  the concrete backend types (Simulator, sim::Network) are\n"
      "    named only under sim/ and runtime/; everything else talks to\n"
      "    runtime::Runtime\n"
      "\n"
      "Suppress with  // predis-lint: allow(D2): reason   (line + next)\n"
      "or             // predis-lint: allow-file(D5)      (whole file)\n";
}

}  // namespace predis::lint
