#include "dataflow.hpp"

#include <algorithm>

namespace predis::lint {
namespace {

// ---------------------------------------------------------------------------
// LockWalker.
// ---------------------------------------------------------------------------

struct MutexRef {
  std::string leaf;
  std::string prefix;
  bool complex = false;
};

bool mutex_compatible(const MutexRef& held, const ChainBack& access) {
  return held.complex || access.complex || held.prefix == access.prefix;
}

class LockWalker {
 public:
  LockWalker(const std::vector<Token>& t, const Function& fn,
             const Symbols& sym, std::string pair, std::string file)
      : t_(t), fn_(fn), sym_(sym), pair_(std::move(pair)),
        file_(std::move(file)) {}

  LockReport run() {
    shadows_ = local_names(t_, fn_);
    for (const auto& [name, gf] : sym_.guarded) mutexish_.insert(gf.mutex);
    for (const std::string& m : sym_.mutex_vars) mutexish_.insert(m);
    const Stmt body = parse_body(t_, fn_);
    walk(body, 0);
    return std::move(rep_);
  }

 private:
  struct Held {
    MutexRef m;
    std::string guard;  ///< Guard variable, "" for manual lock().
    int depth = 0;
  };
  struct Guard {
    std::vector<MutexRef> mutexes;
    int depth = 0;
    bool active = false;
  };

  void walk(const Stmt& s, int depth) {
    switch (s.kind) {
      case StmtKind::kSimple:
        process_simple(s, depth);
        break;
      case StmtKind::kBlock:
        for (const Stmt& c : s.children) walk(c, depth + 1);
        pop_scope(depth + 1);
        break;
      case StmtKind::kIf:
        check_range(s.head_b, s.head_e);
        for (const Stmt& c : s.children) {
          walk(c, depth + 1);
          pop_scope(depth + 1);
        }
        break;
      default:  // loops, switch
        check_range(s.head_b, s.head_e);
        for (const Stmt& c : s.children) walk(c, depth + 1);
        pop_scope(depth + 1);
        break;
    }
  }

  void pop_scope(int depth) {
    held_.erase(std::remove_if(held_.begin(), held_.end(),
                               [&](const Held& h) { return h.depth >= depth; }),
                held_.end());
    for (auto it = guards_.begin(); it != guards_.end();) {
      if (it->second.depth >= depth) {
        it = guards_.erase(it);
      } else {
        ++it;
      }
    }
  }

  void acquire(const MutexRef& m, const std::string& guard, int depth,
               std::size_t line) {
    for (const Held& h : held_) {
      if (h.m.leaf == m.leaf) continue;  // same mutex class: no order edge
      rep_.edges.push_back(
          {pair_ + "::" + h.m.leaf, pair_ + "::" + m.leaf, file_, line});
    }
    held_.push_back({m, guard, depth});
  }

  void release(const MutexRef& m) {
    for (std::size_t i = held_.size(); i-- > 0;) {
      const ChainBack as{m.leaf, m.prefix, m.complex};
      if (held_[i].m.leaf == m.leaf && mutex_compatible(held_[i].m, as)) {
        held_.erase(held_.begin() + static_cast<std::ptrdiff_t>(i));
        return;
      }
    }
  }

  /// Parse the mutex named by the argument range [b, e): strip &/*,
  /// take the trailing identifier chain.
  std::optional<MutexRef> parse_mutex_arg(std::size_t b, std::size_t e) {
    std::size_t last = e;
    bool complex = false;
    for (std::size_t j = b; j < e; ++j) {
      if (t_[j].ident) last = j;
      if (t_[j].text == "(" || t_[j].text == "[") complex = true;
    }
    if (last == e) return std::nullopt;
    if (t_[last].text == "defer_lock" || t_[last].text == "adopt_lock" ||
        t_[last].text == "try_to_lock") {
      return std::nullopt;
    }
    const ChainBack cb = chain_ending_at(t_, last);
    return MutexRef{t_[last].text, cb.prefix, complex || cb.complex};
  }

  void process_simple(const Stmt& s, int depth) {
    static const std::set<std::string> kGuardTypes = {
        "lock_guard", "scoped_lock", "unique_lock", "shared_lock"};
    for (std::size_t j = s.begin; j < s.end; ++j) {
      if (!t_[j].ident) continue;
      // Guard declaration: `std::lock_guard<std::mutex> g(mu);`.
      if (kGuardTypes.count(t_[j].text) != 0) {
        std::size_t k = j + 1;
        if (k < s.end && t_[k].text == "<") k = skip_template_args(t_, k);
        if (k >= s.end || !t_[k].ident) continue;
        const std::string guard_var = t_[k].text;
        if (k + 1 >= s.end ||
            (t_[k + 1].text != "(" && t_[k + 1].text != "{")) {
          guards_[guard_var] = {{}, depth, false};  // deferred/empty guard
          j = k;
          continue;
        }
        const std::size_t close = match_forward(t_, k + 1);
        if (close >= s.end + 1) continue;
        bool deferred = false;
        std::vector<MutexRef> mutexes;
        int d = 0;
        std::size_t arg_b = k + 2;
        for (std::size_t a = k + 2; a <= close; ++a) {
          if (t_[a].text == "(" || t_[a].text == "[" || t_[a].text == "<") ++d;
          if (t_[a].text == ")" || t_[a].text == "]" || t_[a].text == ">") --d;
          if ((t_[a].text == "," && d == 0) || a == close) {
            for (std::size_t x = arg_b; x < a; ++x) {
              if (t_[x].text == "defer_lock") deferred = true;
            }
            if (const auto m = parse_mutex_arg(arg_b, a)) {
              mutexes.push_back(*m);
            }
            arg_b = a + 1;
          }
        }
        if (!deferred) {
          for (const MutexRef& m : mutexes) {
            acquire(m, guard_var, depth, t_[j].line);
          }
        }
        guards_[guard_var] = {std::move(mutexes), depth, !deferred};
        j = close;
        continue;
      }
      // Manual `x.lock()` / `x.unlock()`.
      if ((t_[j].text == "lock" || t_[j].text == "unlock") &&
          j + 1 < s.end && t_[j + 1].text == "(" && j >= 2 &&
          (t_[j - 1].text == "." || t_[j - 1].text == "->") &&
          t_[j - 2].ident) {
        const bool locking = t_[j].text == "lock";
        const std::string& obj = t_[j - 2].text;
        const auto git = guards_.find(obj);
        if (git != guards_.end()) {
          Guard& g = git->second;
          if (locking && !g.active) {
            for (const MutexRef& m : g.mutexes) {
              acquire(m, obj, g.depth, t_[j].line);
            }
            g.active = true;
          } else if (!locking && g.active) {
            held_.erase(std::remove_if(held_.begin(), held_.end(),
                                       [&](const Held& h) {
                                         return h.guard == obj;
                                       }),
                        held_.end());
            g.active = false;
          }
          continue;
        }
        if (mutexish_.count(obj) != 0) {
          const ChainBack cb = chain_ending_at(t_, j - 2);
          const MutexRef m{obj, cb.prefix, cb.complex};
          if (locking) {
            acquire(m, "", depth, t_[j].line);
          } else {
            release(m);
          }
        }
        continue;
      }
    }
    check_range(s.begin, s.end);
  }

  void check_range(std::size_t b, std::size_t e) {
    for (std::size_t j = b; j < e && j < t_.size(); ++j) {
      if (!t_[j].ident) continue;
      const auto it = sym_.guarded.find(t_[j].text);
      if (it == sym_.guarded.end()) continue;
      // The annotated declaration itself.
      if (t_[j].line == it->second.decl.line &&
          file_ == it->second.decl.file) {
        continue;
      }
      // Method call with the same name, not a field access.
      if (j + 1 < t_.size() && t_[j + 1].text == "(") continue;
      const ChainBack cb = chain_ending_at(t_, j);
      // Unqualified use of a shadowing local/parameter.
      if (cb.prefix.empty() && shadows_.count(t_[j].text) != 0) continue;
      bool matched = false;
      for (const Held& h : held_) {
        if (h.m.leaf == it->second.mutex && mutex_compatible(h.m, cb)) {
          matched = true;
          break;
        }
      }
      if (matched) continue;
      const auto key = std::make_pair(t_[j].text, t_[j].line);
      if (!reported_.insert(key).second) continue;
      rep_.violations.push_back({t_[j].text, it->second.mutex, t_[j].line});
    }
  }

  const std::vector<Token>& t_;
  const Function& fn_;
  const Symbols& sym_;
  std::string pair_;
  std::string file_;
  std::set<std::string> shadows_;
  std::set<std::string> mutexish_;
  std::vector<Held> held_;
  std::map<std::string, Guard> guards_;
  std::set<std::pair<std::string, std::size_t>> reported_;
  LockReport rep_;
};

// ---------------------------------------------------------------------------
// TaintWalker.
// ---------------------------------------------------------------------------

class TaintWalker {
 public:
  TaintWalker(const std::vector<Token>& t, const Function& fn,
              const Symbols& sym, std::string msg, bool handler)
      : t_(t), fn_(fn), sym_(sym), msg_(std::move(msg)), handler_(handler) {}

  TaintReport run() {
    shadows_ = local_names(t_, fn_);
    const Stmt body = parse_body(t_, fn_);
    walk(body);
    return std::move(rep_);
  }

 private:
  static std::string chain_leaf(const std::string& chain) {
    const auto cut = chain.find_last_of(".>:");
    return cut == std::string::npos ? chain : chain.substr(cut + 1);
  }
  static std::string chain_root(const std::string& chain) {
    const auto cut = chain.find_first_of(".-:");
    return cut == std::string::npos ? chain : chain.substr(0, cut);
  }
  static bool benign_leaf(const std::string& chain) {
    const std::string leaf = chain_leaf(chain);
    return leaf == "size" || leaf == "count" || leaf == "empty" ||
           leaf == "begin" || leaf == "end" || leaf == "length";
  }

  bool is_msg_chain(const std::string& chain) const {
    if (msg_.empty()) return false;
    return chain.rfind(msg_ + ".", 0) == 0 || chain.rfind(msg_ + "->", 0) == 0;
  }

  /// Is this chain a tainted *value* here? (Bare `msg` alone is a
  /// handle, not a value — see store checks for that case.) `is_call`
  /// says the chain is immediately invoked: benign leaves only launder
  /// taint as method calls (`.size()`, `.end()`), never as field reads
  /// (`msg.count` is data, not a count of anything).
  bool chain_tainted(const std::string& chain, bool is_call) const {
    if (sanitized_.count(chain) != 0) return false;
    if (is_call && benign_leaf(chain)) return false;
    if (is_msg_chain(chain)) return true;
    const std::string root = chain_root(chain);
    if (tainted_.count(root) != 0) return true;
    if (sym_.msg_derived.count(root) != 0 && shadows_.count(root) == 0) {
      return true;
    }
    return false;
  }

  struct RangeScan {
    bool taint = false;
    bool kmax = false;
    bool percent = false;
    bool bare_msg = false;
    std::string first_chain;
    std::size_t first_line = 0;
  };

  RangeScan scan_range(std::size_t b, std::size_t e) const {
    RangeScan out;
    for (std::size_t j = b; j < e && j < t_.size(); ++j) {
      if (t_[j].text == "%") out.percent = true;
      if (!t_[j].ident) continue;
      if (t_[j].text.rfind("kMax", 0) == 0) {
        out.kmax = true;
        continue;
      }
      const std::string chain = chain_starting_at(t_, j, e);
      const std::size_t next = chain_end_index(t_, j, e);
      const bool call = next < e && t_[next].text == "(";
      if (!msg_.empty() && chain == msg_) out.bare_msg = true;
      if (chain_tainted(chain, call) && !out.taint) {
        out.taint = true;
        out.first_chain = chain;
        out.first_line = t_[j].line;
      }
      j = next - 1;
    }
    return out;
  }

  void add_sink(TaintSink::Kind kind, std::size_t line, std::string what,
                std::string detail) {
    const auto key = std::make_tuple(static_cast<int>(kind), line, what);
    if (!sink_seen_.insert(key).second) return;
    rep_.sinks.push_back({kind, line, std::move(what), std::move(detail)});
  }

  /// Subscript and allocation sinks anywhere in [b, e).
  void check_range(std::size_t b, std::size_t e) {
    for (std::size_t j = b; j < e && j < t_.size(); ++j) {
      if (!t_[j].ident) continue;
      // `v[tainted]` where v is a known std::vector.
      if (sym_.vector_vars.count(t_[j].text) != 0 && j + 1 < t_.size() &&
          t_[j + 1].text == "[") {
        const std::size_t close = match_forward(t_, j + 1);
        for (std::size_t k = j + 2; k < close && k < t_.size(); ++k) {
          if (!t_[k].ident) continue;
          const std::string chain = chain_starting_at(t_, k, close);
          const std::size_t next = chain_end_index(t_, k, close);
          const bool call = next < close && t_[next].text == "(";
          // D9 owns every message-index subscript, direct or
          // laundered; D4 keeps only the sender id.
          if (chain_tainted(chain, call)) {
            add_sink(TaintSink::kIndex, t_[k].line, chain, t_[j].text);
          }
          k = next - 1;
        }
        continue;
      }
      // `.resize(tainted)` / `.reserve(tainted)`.
      if ((t_[j].text == "resize" || t_[j].text == "reserve") &&
          j + 1 < t_.size() && t_[j + 1].text == "(" && j >= 1 &&
          (t_[j - 1].text == "." || t_[j - 1].text == "->")) {
        const std::size_t close = match_forward(t_, j + 1);
        const RangeScan rs = scan_range(j + 2, close);
        if (rs.taint && !rs.kmax && !rs.percent) {
          add_sink(TaintSink::kAlloc, t_[j].line, rs.first_chain, t_[j].text);
        }
        continue;
      }
    }
  }

  void loop_bound_check(std::size_t b, std::size_t e, std::size_t line) {
    bool relational = false;
    for (std::size_t j = b; j < e && j < t_.size(); ++j) {
      const std::string& x = t_[j].text;
      if (x == "<" || x == "<=" || x == ">" || x == ">=") relational = true;
    }
    if (!relational) return;  // iterator != end() loops etc.
    const RangeScan rs = scan_range(b, e);
    if (rs.taint && !rs.kmax) {
      add_sink(TaintSink::kLoop, line, rs.first_chain, "");
    }
  }

  /// Chains mentioned in a guard condition that are currently tainted.
  /// True when the comparison partner of the chain ending just before
  /// `op` / starting just after it is an iterator sentinel
  /// (`X.end()` / `X.begin()`): existence checks bound nothing, so they
  /// must not count as sanitizers.
  bool iterator_sentinel_compare(std::size_t op, std::size_t e) const {
    if (op + 1 < e && t_[op + 1].ident) {
      const std::string leaf = chain_leaf(chain_starting_at(t_, op + 1, e));
      if (leaf == "end" || leaf == "begin") return true;
    }
    return false;
  }

  std::vector<std::string> guarded_chains(std::size_t b, std::size_t e) const {
    std::vector<std::string> out;
    for (std::size_t j = b; j < e && j < t_.size(); ++j) {
      if (!t_[j].ident) continue;
      const std::string chain = chain_starting_at(t_, j, e);
      const std::size_t next = chain_end_index(t_, j, e);
      const bool call = next < e && t_[next].text == "(";
      const bool vs_sentinel =
          next < e && (t_[next].text == "==" || t_[next].text == "!=") &&
          iterator_sentinel_compare(next, e);
      if (!vs_sentinel && chain_tainted(chain, call)) out.push_back(chain);
      j = next - 1;
    }
    return out;
  }

  void apply_sanitize(const std::vector<std::string>& chains) {
    for (const std::string& c : chains) {
      if (c.find_first_of(".-:") == std::string::npos) {
        tainted_.erase(c);  // bare local: the whole value was checked
      }
      sanitized_.insert(c);
    }
  }

  void walk(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kSimple:
        process_simple(s);
        break;
      case StmtKind::kBlock:
        for (const Stmt& c : s.children) walk(c);
        break;
      case StmtKind::kIf: {
        check_range(s.head_b, s.head_e);
        store_scan(s.head_b, s.head_e);  // `if (!seen_.insert(h).second)`
        const std::vector<std::string> mentioned =
            guarded_chains(s.head_b, s.head_e);
        if (!s.children.empty() && stmt_terminal(t_, s.children[0])) {
          // `if (bad) return;` — the guard dominates everything after.
          walk(s.children[0]);
          if (s.has_else && s.children.size() > 1) walk(s.children[1]);
          apply_sanitize(mentioned);
        } else {
          // Inside the branch the condition held: sanitize locally.
          const std::set<std::string> saved = sanitized_;
          for (const std::string& c : mentioned) sanitized_.insert(c);
          if (!s.children.empty()) walk(s.children[0]);
          sanitized_ = saved;
          if (s.has_else && s.children.size() > 1) walk(s.children[1]);
        }
        break;
      }
      case StmtKind::kFor: {
        process_for_head(s);
        for (const Stmt& c : s.children) walk(c);
        break;
      }
      case StmtKind::kWhile:
      case StmtKind::kDo:
        loop_bound_check(s.head_b, s.head_e, t_[s.begin].line);
        check_range(s.head_b, s.head_e);
        for (const Stmt& c : s.children) walk(c);
        break;
      case StmtKind::kSwitch:
        check_range(s.head_b, s.head_e);
        for (const Stmt& c : s.children) walk(c);
        break;
    }
  }

  void process_for_head(const Stmt& s) {
    std::vector<std::size_t> semis;
    int depth = 0;
    for (std::size_t j = s.head_b; j < s.head_e; ++j) {
      if (t_[j].text == "(" || t_[j].text == "[" || t_[j].text == "{") ++depth;
      if (t_[j].text == ")" || t_[j].text == "]" || t_[j].text == "}") --depth;
      if (t_[j].text == ";" && depth == 0) semis.push_back(j);
    }
    if (semis.size() >= 2) {
      handle_assignments(s.head_b, semis[0]);
      loop_bound_check(semis[0] + 1, semis[1], t_[s.begin].line);
      check_range(s.head_b, s.head_e);
      return;
    }
    // Range-for: `for (decl : container)`.
    std::size_t colon = s.head_e;
    depth = 0;
    for (std::size_t j = s.head_b; j < s.head_e; ++j) {
      if (t_[j].text == "(" || t_[j].text == "[" || t_[j].text == "{") ++depth;
      if (t_[j].text == ")" || t_[j].text == "]" || t_[j].text == "}") --depth;
      if (t_[j].text == ":" && depth == 0) {
        colon = j;
        break;
      }
    }
    check_range(s.head_b, s.head_e);
    if (colon >= s.head_e || colon + 1 >= s.head_e) return;
    // Loop variables: identifiers directly before the colon (covers
    // plain vars and structured bindings).
    std::vector<std::string> vars;
    for (std::size_t j = s.head_b; j < colon; ++j) {
      if (!t_[j].ident) continue;
      const std::string& nxt = t_[j + 1].text;
      if (nxt == ":" || nxt == "," || nxt == "]") vars.push_back(t_[j].text);
    }
    const std::size_t cb = colon + 1;
    bool src_tainted = false;
    for (std::size_t j = cb; j < s.head_e; ++j) {
      if (!t_[j].ident) continue;
      const std::string chain = chain_starting_at(t_, j, s.head_e);
      const std::size_t next = chain_end_index(t_, j, s.head_e);
      const bool call = next < s.head_e && t_[next].text == "(";
      if (chain_tainted(chain, call) ||
          (!msg_.empty() && chain.rfind(msg_, 0) == 0 &&
           !(call && benign_leaf(chain)) && sanitized_.count(chain) == 0)) {
        src_tainted = true;
      }
      j = next - 1;
    }
    for (const std::string& v : vars) {
      if (src_tainted) {
        tainted_.insert(v);
      } else {
        tainted_.erase(v);
      }
    }
  }

  /// Resolve the root of the expression ending just before index `k`
  /// (exclusive), skipping trailing ]/) groups; returns the root ident
  /// index or npos.
  std::size_t lvalue_root(std::size_t before, bool& subscripted) const {
    std::size_t k = before;
    while (k > fn_.body_open) {
      --k;
      const std::string& x = t_[k].text;
      if (x == "]" || x == ")") {
        if (x == "]") subscripted = true;
        const std::size_t open = match_backward(t_, k);
        if (open >= t_.size() || open == 0) return t_.size();
        k = open;
        continue;
      }
      if (t_[k].ident) return k;
      if (x == "." || x == "->" || x == "::") continue;
      return t_.size();
    }
    return t_.size();
  }

  void handle_assignments(std::size_t b, std::size_t e) {
    // First top-level "=" in [b, e).
    std::size_t assign = e;
    int depth = 0;
    for (std::size_t j = b; j < e; ++j) {
      const std::string& x = t_[j].text;
      if (x == "(" || x == "[" || x == "{") ++depth;
      if (x == ")" || x == "]" || x == "}") --depth;
      if (x == "=" && depth == 0) {
        assign = j;
        break;
      }
    }
    if (assign >= e) return;
    // Compound assignment (`x += y`): the operator char sits before "=".
    std::size_t lhs_end = assign;
    static const std::string kOps = "+-*/%|&^";
    const bool compound = assign > b && t_[assign - 1].text.size() == 1 &&
                          kOps.find(t_[assign - 1].text[0]) !=
                              std::string::npos;
    if (compound) --lhs_end;
    bool subscripted = false;
    const std::size_t rootIdx = lvalue_root(lhs_end, subscripted);
    if (rootIdx >= t_.size()) return;
    const ChainBack cb = chain_ending_at(t_, rootIdx);
    const std::string lhs_leaf = t_[rootIdx].text;
    const std::string lhs_root = cb.root.empty() ? lhs_leaf : cb.root;

    const RangeScan rs = scan_range(assign + 1, e);

    // Reference alias onto a member: `auto& state = stripes_[h];`.
    if (rootIdx >= 2 && t_[rootIdx - 1].text == "&" && cb.prefix.empty()) {
      for (std::size_t j = assign + 1; j < e; ++j) {
        if (t_[j].ident && !t_[j].text.empty() && t_[j].text.back() == '_' &&
            shadows_.count(t_[j].text) == 0) {
          alias_[lhs_leaf] = t_[j].text;
          break;
        }
      }
    }

    // Store sink: handler writes unsanitized message data into an
    // unannotated member. Subscripted lvalues are exempt — writing one
    // slot (`credits_[from] += msg.amount`) is the member doing its
    // job, not the whole container becoming message-derived.
    if (handler_ && !subscripted) {
      std::string target;
      if (!lhs_root.empty() && lhs_root.back() == '_' &&
          shadows_.count(lhs_root) == 0) {
        target = lhs_root;
      } else if (alias_.count(lhs_root) != 0) {
        target = alias_.at(lhs_root);
      }
      if (!target.empty() && sym_.msg_derived.count(target) == 0 &&
          (rs.taint || rs.bare_msg) && !rs.kmax && !rs.percent) {
        add_sink(TaintSink::kStore, t_[rootIdx].line,
                 rs.taint ? rs.first_chain : msg_, target);
      }
    }

    // Taint propagation through plain local assignments.
    if (!subscripted && cb.prefix.empty() &&
        (lhs_root.empty() || lhs_root.back() != '_')) {
      if (rs.taint && !rs.kmax && !rs.percent) {
        tainted_.insert(lhs_leaf);
      } else {
        tainted_.erase(lhs_leaf);
      }
    }
  }

  /// Container-mutating stores into members: `seen_.insert(h)` style.
  void store_scan(std::size_t b, std::size_t e) {
    if (!handler_) return;
    static const std::set<std::string> kStoreMethods = {
        "insert", "emplace", "emplace_back", "push_back", "push", "assign"};
    for (std::size_t j = b; j + 1 < e; ++j) {
      if (!t_[j].ident || kStoreMethods.count(t_[j].text) == 0 ||
          t_[j + 1].text != "(") {
        continue;
      }
      if (j < 2 || (t_[j - 1].text != "." && t_[j - 1].text != "->")) {
        continue;
      }
      std::size_t obj = j - 2;
      if (t_[obj].text == "]" || t_[obj].text == ")") {
        const std::size_t open = match_backward(t_, obj);
        if (open >= t_.size() || open == 0 || !t_[open - 1].ident) continue;
        obj = open - 1;
      }
      if (!t_[obj].ident) continue;
      const ChainBack cb = chain_ending_at(t_, obj);
      const std::string root = cb.root.empty() ? t_[obj].text : cb.root;
      std::string target;
      if (!root.empty() && root.back() == '_' && shadows_.count(root) == 0) {
        target = root;
      } else if (alias_.count(root) != 0) {
        target = alias_.at(root);
      }
      if (target.empty() || sym_.msg_derived.count(target) != 0) continue;
      const std::size_t close = match_forward(t_, j + 1);
      const RangeScan rs = scan_range(j + 2, close);
      if ((rs.taint || rs.bare_msg) && !rs.kmax && !rs.percent) {
        add_sink(TaintSink::kStore, t_[j].line,
                 rs.taint ? rs.first_chain : msg_, target);
      }
    }
  }

  void process_simple(const Stmt& s) {
    handle_assignments(s.begin, s.end);
    store_scan(s.begin, s.end);
    check_range(s.begin, s.end);
  }

  const std::vector<Token>& t_;
  const Function& fn_;
  const Symbols& sym_;
  std::string msg_;
  bool handler_;
  std::set<std::string> shadows_;
  std::set<std::string> tainted_;
  std::set<std::string> sanitized_;
  std::map<std::string, std::string> alias_;
  std::set<std::tuple<int, std::size_t, std::string>> sink_seen_;
  TaintReport rep_;
};

}  // namespace

LockReport analyze_locks(const std::vector<Token>& t, const Function& fn,
                         const Symbols& sym, const std::string& pair,
                         const std::string& file) {
  return LockWalker(t, fn, sym, pair, file).run();
}

TaintReport analyze_taint(const std::vector<Token>& t, const Function& fn,
                          const Symbols& sym, const std::string& msg_param,
                          bool is_handler) {
  return TaintWalker(t, fn, sym, msg_param, is_handler).run();
}

}  // namespace predis::lint
