#include <filesystem>

#include "rules.hpp"

namespace predis::lint {
namespace {
namespace fs = std::filesystem;

bool under_dir(const std::string& path, const std::string& dir) {
  const std::string generic = fs::path(path).generic_string();
  return generic.find("/" + dir + "/") != std::string::npos;
}

}  // namespace

// --- D7: guarded-field lock discipline -------------------------------------

void run_d7(Context& ctx) {
  if (ctx.symbols.guarded.empty()) return;
  for (const Function& fn : ctx.functions) {
    LockReport lr =
        analyze_locks(ctx.tokens, fn, ctx.symbols, ctx.pair, ctx.file.path);
    for (const LockViolation& v : lr.violations) {
      emit(ctx, v.line, "D7",
           "field '" + v.field + "' (guarded by '" + v.mutex +
               "') accessed without holding '" + v.mutex + "' in '" + fn.name +
               "': take the lock, or widen an existing locked scope");
    }
    for (LockEdge& e : lr.edges) {
      ctx.edges.push_back(std::move(e));
    }
  }
}

// --- D8: timer-handle lifecycle --------------------------------------------

void run_d8(Context& ctx) {
  // The runtime implementations own their internal scheduling; the sim
  // backend predates the TimerHandle API. Everything else must account
  // for every handle Runtime::schedule()/after() returns.
  if (under_dir(ctx.file.path, "runtime") || under_dir(ctx.file.path, "sim")) {
    return;
  }
  const std::vector<Token>& t = ctx.tokens;
  static const std::set<std::string> kSchedulers = {"schedule",
                                                    "schedule_after", "after"};
  for (const Function& fn : ctx.functions) {
    for (std::size_t i = fn.body_open + 1; i < fn.body_close; ++i) {
      if (!t[i].ident || kSchedulers.count(t[i].text) == 0) continue;
      if (i + 1 >= fn.body_close || t[i + 1].text != "(") continue;
      if (i < 2 || (t[i - 1].text != "." && t[i - 1].text != "->")) continue;
      if (!t[i - 2].ident) continue;
      const std::size_t close = match_forward(t, i + 1);
      if (close + 1 >= t.size()) continue;
      // Walk back over the object chain to the statement start.
      std::size_t j = i - 2;
      while (j >= 2 && (t[j - 1].text == "." || t[j - 1].text == "->") &&
             t[j - 2].ident) {
        j -= 2;
      }
      if (j == 0) continue;
      const std::string& prev = t[j - 1].text;
      const bool stmt_start = prev == ";" || prev == "{" || prev == "}" ||
                              prev == ")" || prev == ":" || prev == "else" ||
                              prev == "do";
      if (t[close + 1].text == ";" && stmt_start) {
        emit(ctx, t[i].line, "D8",
             "result of '" + t[i - 2].text + "." + t[i].text +
                 "()' is discarded in '" + fn.name +
                 "': store the TimerHandle and cancel it on "
                 "teardown/restart, or wrap the call in "
                 "PREDIS_FIRE_AND_FORGET for a self-guarded tick chain");
        continue;
      }
      // `auto h = net_.schedule(...);` where h is a local that is never
      // touched again: the handle leaks and the timer can never be
      // cancelled.
      if (prev == "=" && j >= 2 && t[j - 2].ident) {
        const std::string& var = t[j - 2].text;
        if (!var.empty() && var.back() == '_') continue;  // member: below
        std::size_t uses = 0;
        for (std::size_t k = fn.body_open; k <= fn.body_close; ++k) {
          if (t[k].ident && t[k].text == var) ++uses;
        }
        if (uses <= 1) {
          emit(ctx, t[j - 2].line, "D8",
               "TimerHandle '" + var + "' in '" + fn.name +
                   "' is assigned but never used again: cancel it, return "
                   "it, or use PREDIS_FIRE_AND_FORGET on the schedule call");
        }
      }
    }
  }
  // Member handles that are armed somewhere but never cancelled in the
  // file pair. Reported once, at the declaration.
  for (const auto& [name, site] : ctx.symbols.timer_members) {
    if (site.file != ctx.file.path) continue;
    if (ctx.symbols.cancelled.count(name) != 0) continue;
    emit(ctx, site.line, "D8",
         "TimerHandle member '" + name +
             "' is never cancelled in this component: cancel it on "
             "stop/restart so a stale timer cannot fire into "
             "reinitialized state");
  }
}

// --- D9: message-taint dataflow --------------------------------------------

void run_d9(Context& ctx) {
  const std::vector<Token>& t = ctx.tokens;
  for (const Function& fn : ctx.functions) {
    const HandlerSig sig = handler_signature(t, fn);
    const bool handler =
        (fn.name.rfind("on_", 0) == 0 || fn.name == "handle") &&
        !sig.msg_param.empty();
    if (!handler && ctx.symbols.msg_derived.empty()) continue;
    const std::string msg = handler ? sig.msg_param : "";
    const TaintReport tr = analyze_taint(t, fn, ctx.symbols, msg, handler);
    for (const TaintSink& s : tr.sinks) {
      switch (s.kind) {
        case TaintSink::kIndex:
          emit(ctx, s.line, "D9",
               "'" + fn.name + "' indexes vector '" + s.detail +
                   "' with tainted '" + s.what +
                   "': the message-derived value reaches the subscript "
                   "without a bounds check or kMax* clamp");
          break;
        case TaintSink::kAlloc:
          emit(ctx, s.line, "D9",
               "'" + fn.name + "' sizes a container (" + s.detail +
                   ") with tainted '" + s.what +
                   "': clamp message-derived sizes with a kMax* constant "
                   "before allocating");
          break;
        case TaintSink::kLoop:
          emit(ctx, s.line, "D9",
               "'" + fn.name + "' walks a message-derived span ('" + s.what +
                   "') without a kMax* clamp in the loop condition: bound "
                   "catch-up/fetch spans (kMaxCatchUpSpan-style constants) "
                   "before serving them");
          break;
        case TaintSink::kStore:
          emit(ctx, s.line, "D9",
               "handler '" + fn.name + "' stores message-derived '" + s.what +
                   "' into member '" + s.detail +
                   "': annotate the member PREDIS_MSG_DERIVED so reads stay "
                   "tainted, or sanitize the value before storing");
          break;
      }
    }
  }
}

}  // namespace predis::lint
