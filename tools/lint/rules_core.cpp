#include <filesystem>

#include "rules.hpp"

namespace predis::lint {
namespace {
namespace fs = std::filesystem;

bool basename_starts_with_any(const std::string& path,
                              const std::vector<std::string>& prefixes) {
  const std::string base = fs::path(path).filename().string();
  for (const std::string& p : prefixes) {
    if (base.rfind(p, 0) == 0) return true;
  }
  return false;
}

// --- D1 helpers -----------------------------------------------------------

bool is_protocol_sink(const std::string& ident) {
  static const std::set<std::string> kExact = {
      "send",  "broadcast", "multicast",  "zone_multicast", "Sha256",
      "sha256", "hash",     "hash_pair",  "digest",         "Writer",
      "Merkle", "MerkleTree", "prove",    "prove_into",     "update"};
  if (kExact.count(ident) != 0) return true;
  return ident.rfind("record", 0) == 0 || ident.rfind("fold", 0) == 0 ||
         ident.rfind("serialize", 0) == 0 || ident.rfind("encode", 0) == 0 ||
         ident.rfind("emit", 0) == 0;
}

}  // namespace

void emit(Context& ctx, std::size_t line, const std::string& rule,
          std::string message) {
  ctx.out.push_back({ctx.file.path, line, rule, std::move(message)});
}

// --- D1: unordered iteration in protocol-visible code ---------------------

void run_d1(Context& ctx) {
  const std::vector<Token>& t = ctx.tokens;
  for (const Function& fn : ctx.functions) {
    // Does this function feed protocol-visible bytes at all?
    std::string sink;
    for (std::size_t i = fn.body_open; i <= fn.body_close; ++i) {
      if (t[i].ident && is_protocol_sink(t[i].text)) {
        sink = t[i].text;
        break;
      }
    }
    if (sink.empty()) continue;
    for (std::size_t i = fn.body_open; i < fn.body_close; ++i) {
      if (t[i].text != "for" || t[i + 1].text != "(") continue;
      const std::size_t close = match_forward(t, i + 1);
      if (close >= t.size()) continue;
      std::string iterated;
      // Range-for: single ":" at paren depth 1.
      int depth = 0;
      for (std::size_t j = i + 1; j < close; ++j) {
        if (t[j].text == "(") ++depth;
        if (t[j].text == ")") --depth;
        if (t[j].text == ":" && depth == 1 && j + 1 < close && t[j + 1].ident) {
          const std::string chain = chain_starting_at(t, j + 1, close);
          const auto last = chain.find_last_of(">.:");
          const std::string leaf =
              last == std::string::npos ? chain : chain.substr(last + 1);
          if (ctx.symbols.unordered_vars.count(leaf) != 0) iterated = chain;
          break;
        }
      }
      // Iterator loop: `for (auto it = container.begin(); ...`.
      if (iterated.empty()) {
        for (std::size_t j = i + 2; j + 2 < close; ++j) {
          if (t[j].ident && ctx.symbols.unordered_vars.count(t[j].text) != 0 &&
              (t[j + 1].text == "." || t[j + 1].text == "->") &&
              t[j + 2].text == "begin") {
            iterated = t[j].text;
            break;
          }
          if (t[j].text == ";") break;  // only the init clause
        }
      }
      if (iterated.empty()) continue;
      emit(ctx, t[i].line, "D1",
           "iteration over unordered container '" + iterated +
               "' in protocol-visible code (function '" + fn.name +
               "' also reaches '" + sink +
               "'): iteration order leaks into emitted bytes; use std::map "
               "or sort before emitting");
    }
  }
}

// --- D2: wall clock / global RNG outside the simulator --------------------

void run_d2(Context& ctx) {
  const std::string generic = fs::path(ctx.file.path).generic_string();
  if (generic.find("/sim/") != std::string::npos) return;
  if (basename_starts_with_any(ctx.file.path, {"rng."})) return;

  static const std::set<std::string> kBanned = {
      "srand",        "random_device", "mt19937",
      "mt19937_64",   "default_random_engine", "minstd_rand",
      "minstd_rand0", "system_clock",  "steady_clock",
      "high_resolution_clock", "gettimeofday", "clock_gettime",
      "timespec_get", "localtime",     "gmtime", "mktime"};
  const std::vector<Token>& t = ctx.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!t[i].ident) continue;
    if (kBanned.count(t[i].text) != 0) {
      emit(ctx, t[i].line, "D2",
           "'" + t[i].text +
               "' outside sim/: all time and randomness must flow through "
               "the simulator clock and the seeded Rng");
      continue;
    }
    if ((t[i].text == "rand" || t[i].text == "clock" ||
         t[i].text == "time") &&
        i + 1 < t.size() && t[i + 1].text == "(") {
      // `rand()` / `clock()` / `time(nullptr)` — require a call so that
      // variables named `time` in other positions stay legal.
      if (i > 0 && (t[i - 1].text == "." || t[i - 1].text == "->")) continue;
      if (t[i].text == "time") {
        const std::string& arg = i + 2 < t.size() ? t[i + 2].text : "";
        if (arg != "nullptr" && arg != "NULL" && arg != "0") continue;
      }
      emit(ctx, t[i].line, "D2",
           "'" + t[i].text +
               "()' outside sim/: wall-clock time and the C RNG break "
               "seeded replay");
    }
  }
}

// --- D3: nodiscard on Expected / try_* APIs, no discarded results ---------

void collect_and_check_declarations(Context& ctx, MustCheck& must_check,
                                    bool emit_diagnostics) {
  if (!is_header(ctx.file.path)) return;
  const std::vector<Token>& t = ctx.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!t[i].ident || t[i + 1].text != "(") continue;
    const std::string& name = t[i].text;
    const bool try_name =
        name.rfind("try_", 0) == 0 && std_try_names().count(name) == 0;
    if (!try_name) continue;
    const auto span = decl_span_before(t, i);
    if (!span) continue;              // expression/call site
    if (span->empty()) continue;      // no return type: a call statement
    if (span_has(*span, "void") && !span_has(*span, "*")) continue;
    if (span_has(*span, "using") || span_has(*span, "typedef")) continue;
    must_check.insert(name);
    if (emit_diagnostics && !span_has(*span, "nodiscard")) {
      emit(ctx, t[i].line, "D3",
           "non-void '" + name +
               "' must be [[nodiscard]]: try_* results carry the only "
               "failure signal");
    }
  }
  // Expected<...>-returning declarations, whatever their name.
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].text != "Expected" || t[i + 1].text != "<") continue;
    const std::size_t after = skip_template_args(t, i + 1);
    if (after == i + 1 || after + 1 >= t.size()) continue;
    if (!t[after].ident || t[after + 1].text != "(") continue;
    const auto span = decl_span_before(t, i);
    if (!span) continue;
    must_check.insert(t[after].text);
    // try_* names were already checked (and reported) by the pass above.
    if (t[after].text.rfind("try_", 0) == 0) continue;
    if (emit_diagnostics && !span_has(*span, "nodiscard")) {
      emit(ctx, t[after].line, "D3",
           "'" + t[after].text +
               "' returns Expected<T> and must be [[nodiscard]]");
    }
  }
}

void run_d3_call_sites(Context& ctx) {
  const std::vector<Token>& t = ctx.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!t[i].ident || t[i + 1].text != "(") continue;
    if (ctx.must_check.count(t[i].text) == 0) continue;
    const std::size_t close = match_forward(t, i + 1);
    if (close + 1 >= t.size() || t[close + 1].text != ";") continue;
    // Walk back over the object chain to the statement start.
    std::size_t j = i;
    while (j >= 2 && (t[j - 1].text == "." || t[j - 1].text == "->")) {
      if (t[j - 2].text == ")") {  // chained call result: f().try_x()
        int depth = 0;
        std::size_t k = j - 2;
        while (k > 0) {
          if (t[k].text == ")") ++depth;
          if (t[k].text == "(" && --depth == 0) break;
          --k;
        }
        if (k == 0 || !t[k - 1].ident) break;
        j = k - 1;
        continue;
      }
      if (!t[j - 2].ident) break;
      j -= 2;
    }
    if (j == 0) continue;
    const std::string& before = t[j - 1].text;
    if (before == ";" || before == "{" || before == "}") {
      emit(ctx, t[i].line, "D3",
           "result of '" + t[i].text +
               "()' is discarded: the Expected<T>/try_* contract requires "
               "checking the outcome (cast to void to discard on purpose)");
    }
  }
}

// --- D4: sender bounds/ban checks in on_* handlers ------------------------
// Message-carried indices are D9's job now — the taint walker follows
// them through assignments, range-fors and guards. D4 keeps only the
// sender id, which never flows (handlers use it directly).

void run_d4(Context& ctx) {
  const std::vector<Token>& t = ctx.tokens;
  for (const Function& fn : ctx.functions) {
    if (fn.name.rfind("on_", 0) != 0) continue;
    const HandlerSig sig = handler_signature(t, fn);
    const std::string& sender = sig.sender;
    if (sig.msg_param.empty()) continue;  // not a network message handler
    if (sender.empty()) continue;

    // An `if (...)`/assert mentioning the sender marks it checked from
    // that point on.
    bool checked = false;
    for (std::size_t i = fn.body_open + 1; i < fn.body_close; ++i) {
      const std::string& x = t[i].text;
      // Guards: if (... from ...) or assert(... from ...).
      if ((x == "if" || x == "assert") && i + 1 < fn.body_close &&
          t[i + 1].text == "(") {
        const std::size_t close = match_forward(t, i + 1);
        for (std::size_t j = i + 2; j < close; ++j) {
          if (t[j].ident && t[j].text == sender) checked = true;
        }
        i = close;
        continue;
      }
      // Subscript of a per-node vector by the raw sender id.
      if (t[i].ident && ctx.symbols.vector_vars.count(x) != 0 &&
          i + 1 < fn.body_close && t[i + 1].text == "[") {
        const std::size_t close = match_forward(t, i + 1);
        for (std::size_t j = i + 2; j < close; ++j) {
          if (!t[j].ident || t[j].text != sender) continue;
          if (!checked) {
            emit(ctx, t[j].line, "D4",
                 "handler '" + fn.name + "' indexes vector '" + x +
                     "' with unchecked sender '" + sender +
                     "': bounds/ban-check the sender id before touching "
                     "per-node state");
            checked = true;  // one report per handler
          }
        }
      }
    }
  }
}

// --- D5: reinterpret_cast / const_cast fenced into approved TUs -----------

void run_d5(Context& ctx) {
  if (basename_starts_with_any(ctx.file.path, {"gf256", "sha256", "bytes"})) {
    return;
  }
  for (const Token& tok : ctx.tokens) {
    if (tok.text == "reinterpret_cast" || tok.text == "const_cast") {
      emit(ctx, tok.line, "D5",
           "'" + tok.text +
               "' outside the approved low-level TUs (gf256*, sha256*, "
               "bytes*): route byte reinterpretation through common/bytes "
               "helpers");
    }
  }
}

// --- D6: backend types fenced behind the Runtime seam ----------------------

void run_d6(Context& ctx) {
  // The simulator and the runtime layer (SimRuntime wraps the backend,
  // ThreadRuntime mirrors it) are the only places allowed to spell the
  // concrete backend types; tests/sim exercises the backend directly.
  const std::string generic = fs::path(ctx.file.path).generic_string();
  if (generic.find("/sim/") != std::string::npos) return;
  if (generic.find("/runtime/") != std::string::npos) return;

  const std::vector<Token>& t = ctx.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!t[i].ident) continue;
    if (t[i].text == "Simulator") {
      emit(ctx, t[i].line, "D6",
           "'Simulator' outside sim//runtime/: drive scenarios through "
           "the Runtime interface (runtime::SimRuntime for the "
           "deterministic backend)");
      continue;
    }
    if (t[i].text == "sim" && i + 2 < t.size() && t[i + 1].text == "::" &&
        t[i + 2].text == "Network") {
      emit(ctx, t[i].line, "D6",
           "'sim::Network' outside sim//runtime/: protocol and harness "
           "code must talk to runtime::Runtime so every backend can "
           "carry it");
    }
  }
}

}  // namespace predis::lint
