// predis-lint: project-specific determinism & protocol-safety checks.
//
// The repo's correctness story leans on two runtime mechanisms — the
// swarm harness's bit-for-bit seed replay and the protocol hygiene
// rules (tip-list cuts, conflict evidence, Expected<T> codec results).
// This linter pins the preconditions for both down *statically*:
//
//   D1  no iteration over std::unordered_map / std::unordered_set in
//       code that emits messages, hashes, folds metrics or builds
//       Merkle/digest inputs (iteration order leaks into
//       protocol-visible bytes and breaks replay determinism)
//   D2  no wall clock / std::rand / global RNG outside src/sim and the
//       seeded rng implementation (all time and randomness must flow
//       through the simulator and Rng)
//   D3  every Expected<T>-returning and non-void try_* API is declared
//       [[nodiscard]], and no call site silently discards the result
//   D4  message handlers (on_* methods taking a sender id and a *Msg
//       parameter) bounds/ban-check the sender and message-carried
//       indices before using them to subscript per-node vectors
//   D5  reinterpret_cast / const_cast only in the approved low-level
//       TUs (gf256*, sha256*, bytes*)
//   D6  the concrete backend types (Simulator, sim::Network) are named
//       only under sim/ and runtime/
//   D7  fields annotated PREDIS_GUARDED_BY(mu) are only touched while
//       `mu` is held, and the global lock-acquisition order is acyclic
//   D8  every Runtime::schedule()/after() TimerHandle is stored and
//       cancelled on teardown/restart, or explicitly discarded with
//       PREDIS_FIRE_AND_FORGET
//   D9  taint from message fields (and PREDIS_MSG_DERIVED members)
//       propagates through assignments/aliases/loops until a kMax*
//       clamp, modulo or dominating bounds check sanitizes it; tainted
//       values must not index containers, size allocations, bound
//       relational loops, or be stored into unannotated members
//   S1  suppression pragmas that no longer match any finding are
//       reported stale (warnings; errors under --strict)
//
// The analysis core lives in source.hpp (tokens), parser.hpp
// (declarations, functions, statement trees) and dataflow.hpp (lock-set
// and taint walkers); the rules sit on top in rules_core.cpp /
// rules_flow.cpp. It is a heuristic analyzer, not a compiler plugin —
// false positives are silenced with the allow pragmas documented in
// docs/static_analysis.md (an allow covers its own line and the next;
// allow-file covers the whole file; S1 keeps both honest).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace predis::lint {

struct Diagnostic {
  std::string file;
  std::size_t line = 0;
  std::string rule;  ///< "D1".."D9", "S1".
  std::string message;
};

struct Options {
  /// Scan directories named lint_fixtures too (self-test only — the
  /// fixtures contain intentional violations).
  bool include_fixtures = false;
  /// Treat stale suppressions (S1) as errors.
  bool strict = false;
  /// Worker threads for the per-file phases; 0 = pick automatically.
  /// Output is deterministic and path-ordered regardless.
  unsigned jobs = 0;
};

/// Expand files and directories into the sorted .hpp/.cpp source list.
/// Directories named build*, .git and (by default) lint_fixtures are
/// skipped.
std::vector<std::string> collect_sources(const std::vector<std::string>& roots,
                                         const Options& options);

/// Full result of a tree scan.
struct Report {
  /// Rule findings, sorted by (file, line, rule), allowlist applied.
  std::vector<Diagnostic> diagnostics;
  /// Stale suppressions (rule "S1"), same ordering. Advisory unless
  /// Options::strict.
  std::vector<Diagnostic> stale_suppressions;
  /// Finding count per rule family (S1 included), zero entries present
  /// for every known rule so the JSON schema is stable.
  std::map<std::string, std::size_t> rule_counts;
  std::size_t files_scanned = 0;
};

/// Run every rule over the given source files.
Report lint_tree(const std::vector<std::string>& files,
                 const Options& options);

/// Back-compat wrapper: diagnostics only, default options.
std::vector<Diagnostic> lint_files(const std::vector<std::string>& files);

/// Render diagnostics as a JSON array (stable field order, one object
/// per diagnostic).
std::string to_json(const std::vector<Diagnostic>& diagnostics);

/// Render a full report as the versioned "predis-lint/2" JSON object.
std::string to_json(const Report& report);

/// Human-readable rule catalogue for --list-rules.
const char* rule_catalogue();

}  // namespace predis::lint
