// predis-lint: project-specific determinism & protocol-safety checks.
//
// The repo's correctness story leans on two runtime mechanisms — the
// swarm harness's bit-for-bit seed replay and the protocol hygiene
// rules (tip-list cuts, conflict evidence, Expected<T> codec results).
// This linter pins the preconditions for both down *statically*:
//
//   D1  no iteration over std::unordered_map / std::unordered_set in
//       code that emits messages, hashes, folds metrics or builds
//       Merkle/digest inputs (iteration order leaks into
//       protocol-visible bytes and breaks replay determinism)
//   D2  no wall clock / std::rand / global RNG outside src/sim and the
//       seeded rng implementation (all time and randomness must flow
//       through the simulator and Rng)
//   D3  every Expected<T>-returning and non-void try_* API is declared
//       [[nodiscard]], and no call site silently discards the result
//   D4  message handlers (on_* methods taking a sender id and a *Msg
//       parameter) bounds/ban-check the sender and message-carried
//       indices before using them to subscript per-node vectors; and
//       (span sub-check, also covering dispatcher-style `handle`
//       methods) any loop walking a message-derived position — a
//       catch-up or fetch span — clamps the walk with a kMax* span
//       constant in the loop condition
//   D5  reinterpret_cast / const_cast only in the approved low-level
//       TUs (gf256*, sha256*, bytes*)
//
// It is a token-level heuristic analyzer, not a compiler plugin: it
// blanks comments and string literals, tokenizes, segments function
// bodies by brace matching, and pattern-matches the rules above.
// False positives are silenced with an allowlist pragma:
//
//   // predis-lint: allow(D2): benchmark timing is the product here.
//   // predis-lint: allow-file(D5)
//
// allow(..) suppresses the named rules on its own line and the line
// below it; allow-file(..) suppresses them for the whole file.
#pragma once

#include <string>
#include <vector>

namespace predis::lint {

struct Diagnostic {
  std::string file;
  std::size_t line = 0;
  std::string rule;  ///< "D1".."D5".
  std::string message;
};

struct Options {
  /// Scan directories named lint_fixtures too (self-test only — the
  /// fixtures contain intentional violations).
  bool include_fixtures = false;
};

/// Expand files and directories into the sorted .hpp/.cpp source list.
/// Directories named build*, .git and (by default) lint_fixtures are
/// skipped.
std::vector<std::string> collect_sources(const std::vector<std::string>& roots,
                                         const Options& options);

/// Run every rule over the given source files. Diagnostics come back
/// sorted by (file, line, rule) and already filtered through the
/// allowlist pragmas.
std::vector<Diagnostic> lint_files(const std::vector<std::string>& files);

/// Render diagnostics as a JSON array (stable field order, one object
/// per diagnostic).
std::string to_json(const std::vector<Diagnostic>& diagnostics);

/// Human-readable rule catalogue for --list-rules.
const char* rule_catalogue();

}  // namespace predis::lint
