#include "parser.hpp"

#include <algorithm>
#include <filesystem>

namespace predis::lint {
namespace {
namespace fs = std::filesystem;
}  // namespace

void collect_symbols(const std::vector<Token>& t, const std::string& path,
                     Symbols& sym) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    // Annotation macros from src/common/thread_annotations.hpp attach
    // to the declarator immediately before them.
    if (t[i].text == "PREDIS_GUARDED_BY" && i + 1 < t.size() &&
        t[i + 1].text == "(" && i > 0 && t[i - 1].ident) {
      const std::size_t close = match_forward(t, i + 1);
      std::string mutex;
      for (std::size_t j = i + 2; j < close && j < t.size(); ++j) {
        if (t[j].ident) mutex = t[j].text;
      }
      if (!mutex.empty()) {
        sym.guarded[t[i - 1].text] = {mutex, {path, t[i].line}};
      }
      continue;
    }
    if (t[i].text == "PREDIS_MSG_DERIVED" && i > 0 && t[i - 1].ident) {
      sym.msg_derived.insert(t[i - 1].text);
      continue;
    }
    // `std::mutex m_;` member/global declarations.
    if ((t[i].text == "mutex" || t[i].text == "shared_mutex" ||
         t[i].text == "recursive_mutex") &&
        i + 2 < t.size() && t[i + 1].ident) {
      const std::string& term = t[i + 2].text;
      if (term == ";" || term == "=" || term == "{") {
        sym.mutex_vars.insert(t[i + 1].text);
      }
    }
    // `runtime::TimerHandle fetch_timer_;` members (trailing-underscore
    // names only: locals are handled flow-sensitively by D8).
    if (t[i].text == "TimerHandle" && i + 2 < t.size() && t[i + 1].ident &&
        !t[i + 1].text.empty() && t[i + 1].text.back() == '_') {
      const std::string& term = t[i + 2].text;
      if (term == ";" || term == "=" || term == "{") {
        sym.timer_members[t[i + 1].text] = {path, t[i + 1].line};
      }
    }
    // `x.cancel()` anywhere in the pair marks x as cancelled for D8.
    if (t[i].text == "cancel" && i + 1 < t.size() && t[i + 1].text == "(" &&
        i >= 2 && (t[i - 1].text == "." || t[i - 1].text == "->") &&
        t[i - 2].ident) {
      sym.cancelled.insert(t[i - 2].text);
    }

    const bool is_unordered =
        t[i].text == "unordered_map" || t[i].text == "unordered_set";
    const bool is_vector = t[i].text == "vector";
    const bool is_alias =
        t[i].ident && sym.unordered_types.count(t[i].text) != 0;
    if (!is_unordered && !is_vector && !is_alias) continue;

    // `using Alias = std::unordered_map<...>;` — record the alias name.
    if (is_unordered && i >= 2 && t[i - 1].text == "::" &&
        i >= 4 && t[i - 3].text == "=" && t[i - 4].ident &&
        i >= 5 && t[i - 5].text == "using") {
      sym.unordered_types.insert(t[i - 4].text);
      continue;
    }
    if (is_unordered && i >= 2 && t[i - 1].text == "=" && t[i - 2].ident &&
        i >= 3 && t[i - 3].text == "using") {
      sym.unordered_types.insert(t[i - 2].text);
      continue;
    }

    std::size_t j = i + 1;
    if (j < t.size() && t[j].text == "<") {
      const std::size_t after = skip_template_args(t, j);
      if (after == j) continue;  // comparison, not a declaration
      j = after;
    } else if (is_unordered || is_vector) {
      continue;  // bare mention without template args
    }
    // Declarator: optional &/*, then the variable name, terminated by
    // ; = { ( — `(` covers `std::vector<T> name(n)` constructor syntax.
    while (j < t.size() && (t[j].text == "&" || t[j].text == "*")) ++j;
    if (j + 1 >= t.size() || !t[j].ident) continue;
    const std::string& next = t[j + 1].text;
    if (next != ";" && next != "=" && next != "{" && next != "(" &&
        next != "PREDIS_MSG_DERIVED" && next != "PREDIS_GUARDED_BY") {
      continue;
    }
    if (is_vector) {
      sym.vector_vars.insert(t[j].text);
    } else {
      sym.unordered_vars.insert(t[j].text);
    }
  }
}

const std::set<std::string>& std_try_names() {
  static const std::set<std::string> kNames = {
      "try_emplace", "try_lock",    "try_lock_for", "try_lock_until",
      "try_acquire", "try_wait",    "try_to_lock",
  };
  return kNames;
}

std::optional<std::vector<std::string>> decl_span_before(
    const std::vector<Token>& t, std::size_t name_idx) {
  static const std::set<std::string> kExprMarkers = {
      "=",  "!",  "(", ",",  "return", ".",  "->", "?",  "+",  "-",
      "/",  "==", "!=", "<=", ">=",     "&&", "||", "if", "while",
      "for", "switch", "case", "throw"};
  std::vector<std::string> span;
  std::size_t i = name_idx;
  while (i > 0) {
    --i;
    const std::string& x = t[i].text;
    if (x == ";" || x == "{" || x == "}") break;
    // Access specifiers end the span too (public: / private:).
    if (x == ":" && i > 0 &&
        (t[i - 1].text == "public" || t[i - 1].text == "private" ||
         t[i - 1].text == "protected")) {
      break;
    }
    if (kExprMarkers.count(x) != 0) return std::nullopt;
    span.push_back(x);
    if (span.size() > 24) break;  // runaway: treat what we have as the span
  }
  return span;
}

bool span_has(const std::vector<std::string>& span, const std::string& word) {
  return std::find(span.begin(), span.end(), word) != span.end();
}

bool is_header(const std::string& path) {
  const std::string ext = fs::path(path).extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".hh";
}

const std::set<std::string>& control_keywords() {
  static const std::set<std::string> kWords = {
      "if", "for", "while", "switch", "catch", "return", "new",
      "delete", "sizeof", "case", "do", "else"};
  return kWords;
}

std::vector<Function> segment_functions(const std::vector<Token>& t) {
  std::vector<Function> out;
  std::size_t skip_until = 0;  // inside a recorded body: no nested starts
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (i < skip_until) continue;
    if (!t[i].ident || t[i + 1].text != "(") continue;
    if (control_keywords().count(t[i].text) != 0) continue;
    if (i > 0) {
      const std::string& prev = t[i - 1].text;
      static const std::set<std::string> kCallContext = {
          ".", "->", "(", ",", "=",  "!",  "return", "&&", "||", "?",
          "+", "-",  "/", "<", "==", "!=", "<=",     ">=", "case"};
      if (kCallContext.count(prev) != 0) continue;
    }
    const std::size_t close = match_forward(t, i + 1);
    if (close >= t.size()) continue;
    // Scan past trailing qualifiers and any constructor initializer
    // list to the body brace (or bail at ; for pure declarations).
    std::size_t j = close + 1;
    bool found_body = false;
    while (j < t.size()) {
      const std::string& x = t[j].text;
      if (x == ";" || x == "}") break;
      if (x == "{") {
        // Member brace-init (`member_{...}`) is preceded by an ident;
        // the body brace is preceded by ) / qualifier / init-list end.
        if (t[j - 1].ident && j > close + 1 &&
            control_keywords().count(t[j - 1].text) == 0 &&
            t[j - 1].text != "const" && t[j - 1].text != "noexcept" &&
            t[j - 1].text != "override" && t[j - 1].text != "final") {
          const std::size_t skip = match_forward(t, j);
          if (skip >= t.size()) break;
          j = skip + 1;
          continue;
        }
        found_body = true;
        break;
      }
      if (x == "(") {  // noexcept(...) or initializer argument list
        const std::size_t skip = match_forward(t, j);
        if (skip >= t.size()) break;
        j = skip + 1;
        continue;
      }
      ++j;
    }
    if (!found_body) continue;
    const std::size_t body_close = match_forward(t, j);
    if (body_close >= t.size()) continue;
    out.push_back({t[i].text, i + 1, close, j, body_close});
    skip_until = body_close;  // lambdas stay inside the enclosing body
  }
  return out;
}

std::vector<std::pair<std::size_t, std::size_t>> split_params(
    const std::vector<Token>& t, const Function& fn) {
  std::vector<std::pair<std::size_t, std::size_t>> params;
  int depth = 0;
  std::size_t start = fn.params_open + 1;
  for (std::size_t i = fn.params_open + 1; i <= fn.params_close; ++i) {
    if (t[i].text == "(" || t[i].text == "<" || t[i].text == "[") ++depth;
    if (t[i].text == ")" || t[i].text == ">" || t[i].text == "]") --depth;
    if ((t[i].text == "," && depth == 0) || i == fn.params_close) {
      if (i > start) params.emplace_back(start, i);
      start = i + 1;
    }
  }
  return params;
}

HandlerSig handler_signature(const std::vector<Token>& t, const Function& fn) {
  HandlerSig sig;
  for (const auto& [b, e] : split_params(t, fn)) {
    bool id_type = false;
    bool msg_type = false;
    std::string last_ident;
    std::string prev_ident;
    for (std::size_t i = b; i < e; ++i) {
      if (!t[i].ident) continue;
      if (t[i].text == "NodeId" || t[i].text == "size_t") id_type = true;
      if (t[i].text.size() >= 3 &&
          t[i].text.find("Msg") != std::string::npos) {
        msg_type = true;
      }
      prev_ident = last_ident;
      last_ident = t[i].text;
    }
    // The name is the last identifier, provided it isn't the type
    // itself (unnamed parameters drop out here).
    if (id_type && sig.sender.empty() && !prev_ident.empty() &&
        last_ident != "NodeId" && last_ident != "size_t") {
      sig.sender = last_ident;
    }
    if (msg_type && !last_ident.empty() &&
        last_ident.find("Msg") == std::string::npos) {
      sig.msg_param = last_ident;
    }
  }
  return sig;
}

// ---------------------------------------------------------------------------
// Statement tree.
// ---------------------------------------------------------------------------

namespace {

Stmt parse_stmt(const std::vector<Token>& t, std::size_t i, std::size_t end);

Stmt parse_block(const std::vector<Token>& t, std::size_t open,
                 std::size_t close) {
  Stmt s;
  s.kind = StmtKind::kBlock;
  s.begin = open;
  s.end = close + 1;
  std::size_t i = open + 1;
  while (i < close) {
    Stmt c = parse_stmt(t, i, close);
    if (c.end <= i) break;  // no progress: malformed region, stop here
    i = c.end;
    s.children.push_back(std::move(c));
  }
  return s;
}

/// Head parens of a control keyword at `i`, tolerating `if constexpr`.
/// Returns {inner_begin, close_paren} or nullopt.
std::optional<std::pair<std::size_t, std::size_t>> control_head(
    const std::vector<Token>& t, std::size_t i, std::size_t end) {
  std::size_t p = i + 1;
  if (p < end && t[p].ident) ++p;  // `if constexpr (...)`
  if (p >= end || t[p].text != "(") return std::nullopt;
  const std::size_t close = match_forward(t, p);
  if (close >= end) return std::nullopt;
  return std::make_pair(p + 1, close);
}

Stmt parse_simple(const std::vector<Token>& t, std::size_t i,
                  std::size_t end) {
  Stmt s;
  s.kind = StmtKind::kSimple;
  s.begin = i;
  int depth = 0;
  std::size_t j = i;
  // `case X:` / `default:` labels end at the colon so the statements
  // they introduce parse as siblings.
  if (t[i].text == "case" || t[i].text == "default") {
    while (j < end && t[j].text != ":") ++j;
    s.end = std::min(j + 1, end);
    return s;
  }
  while (j < end) {
    const std::string& y = t[j].text;
    if (y == "(" || y == "[" || y == "{") ++depth;
    if (y == ")" || y == "]" || y == "}") {
      if (depth == 0) break;  // ran into the enclosing closer
      --depth;
    }
    if (y == ";" && depth == 0) {
      ++j;
      break;
    }
    ++j;
  }
  s.end = std::max(j, i + 1);
  return s;
}

Stmt parse_stmt(const std::vector<Token>& t, std::size_t i, std::size_t end) {
  const std::string& x = t[i].text;
  if (x == "{") {
    const std::size_t close = match_forward(t, i);
    if (close < end) return parse_block(t, i, close);
    return parse_simple(t, i, end);
  }
  if (x == "if" || x == "for" || x == "while" || x == "switch") {
    const auto head = control_head(t, i, end);
    if (!head) return parse_simple(t, i, end);
    Stmt s;
    s.begin = i;
    s.head_b = head->first;
    s.head_e = head->second;
    s.kind = x == "if"      ? StmtKind::kIf
             : x == "for"   ? StmtKind::kFor
             : x == "while" ? StmtKind::kWhile
                            : StmtKind::kSwitch;
    if (head->second + 1 >= end) {
      s.end = end;
      return s;
    }
    Stmt body = parse_stmt(t, head->second + 1, end);
    std::size_t j = body.end;
    s.children.push_back(std::move(body));
    if (s.kind == StmtKind::kIf && j < end && t[j].text == "else") {
      s.has_else = true;
      if (j + 1 < end) {
        Stmt els = parse_stmt(t, j + 1, end);
        j = els.end;
        s.children.push_back(std::move(els));
      } else {
        j = end;
      }
    }
    s.end = j;
    return s;
  }
  if (x == "do") {
    Stmt s;
    s.kind = StmtKind::kDo;
    s.begin = i;
    if (i + 1 >= end) {
      s.end = end;
      return s;
    }
    Stmt body = parse_stmt(t, i + 1, end);
    std::size_t j = body.end;
    s.children.push_back(std::move(body));
    if (j < end && t[j].text == "while" && j + 1 < end &&
        t[j + 1].text == "(") {
      const std::size_t close = match_forward(t, j + 1);
      if (close < end) {
        s.head_b = j + 2;
        s.head_e = close;
        j = close + 1;
        if (j < end && t[j].text == ";") ++j;
      }
    }
    s.end = j;
    return s;
  }
  return parse_simple(t, i, end);
}

}  // namespace

Stmt parse_body(const std::vector<Token>& t, const Function& fn) {
  return parse_block(t, fn.body_open, fn.body_close);
}

bool stmt_terminal(const std::vector<Token>& t, const Stmt& s) {
  switch (s.kind) {
    case StmtKind::kSimple: {
      const std::string& first = t[s.begin].text;
      return first == "return" || first == "break" || first == "continue" ||
             first == "throw";
    }
    case StmtKind::kBlock:
      return !s.children.empty() && stmt_terminal(t, s.children.back());
    case StmtKind::kIf:
      return s.has_else && s.children.size() == 2 &&
             stmt_terminal(t, s.children[0]) && stmt_terminal(t, s.children[1]);
    default:
      return false;
  }
}

std::set<std::string> local_names(const std::vector<Token>& t,
                                  const Function& fn) {
  std::set<std::string> out;
  for (const auto& [b, e] : split_params(t, fn)) {
    std::size_t idents = 0;
    std::string last;
    bool last_after_ref = false;
    for (std::size_t i = b; i < e; ++i) {
      if (!t[i].ident) continue;
      ++idents;
      last = t[i].text;
      last_after_ref = i > b && (t[i - 1].text == "&" || t[i - 1].text == "*" ||
                                 t[i - 1].text == ">");
    }
    if (!last.empty() && (idents >= 2 || last_after_ref)) out.insert(last);
  }
  static const std::set<std::string> kNotNames = {
      "const", "auto", "static", "constexpr", "true", "false", "nullptr"};
  for (std::size_t i = fn.body_open + 1; i < fn.body_close; ++i) {
    if (!t[i].ident || control_keywords().count(t[i].text) != 0 ||
        kNotNames.count(t[i].text) != 0) {
      continue;
    }
    const std::string& prev = t[i - 1].text;
    const std::string& next = t[i + 1].text;
    // Structured bindings: `auto& [a, b] = ...` / `for (auto [k, v] : m)`.
    if ((prev == "[" || prev == ",") && (next == "," || next == "]")) {
      std::size_t open = i;
      while (open > fn.body_open && t[open].text != "[") --open;
      if (open >= 2 &&
          (t[open - 1].text == "&" || t[open - 1].text == "auto" ||
           t[open - 2].text == "auto")) {
        out.insert(t[i].text);
      }
      continue;
    }
    const bool decl_prev =
        prev == "*" || prev == "&" || prev == ">" ||
        (t[i - 1].ident && control_keywords().count(prev) == 0 &&
         kNotNames.count(prev) == 0 && prev != "return");
    // `auto x = ...` has prev=="auto" which kNotNames excludes above —
    // re-admit the declaration keywords as type positions.
    const bool decl_kw = prev == "auto" || prev == "const";
    if (!decl_prev && !decl_kw) continue;
    if (next == "=" || next == ";" || next == "{" || next == "(" ||
        next == ":" || next == "[") {
      out.insert(t[i].text);
    }
  }
  return out;
}

}  // namespace predis::lint
