#include "source.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace predis::lint {
namespace {

void harvest_pragma(const std::string& comment, std::size_t line,
                    SourceFile& out) {
  static const std::string kTag = "predis-lint:";
  const auto tag = comment.find(kTag);
  if (tag == std::string::npos) return;
  std::string rest = comment.substr(tag + kTag.size());
  const bool whole_file = rest.find("allow-file(") != std::string::npos;
  const auto open = rest.find('(');
  if (open == std::string::npos) return;
  const auto close = rest.find(')', open);
  if (close == std::string::npos) return;
  std::string rules = rest.substr(open + 1, close - open - 1);
  std::string token;
  std::istringstream split(rules);
  while (std::getline(split, token, ',')) {
    const auto b = token.find_first_not_of(" \t");
    const auto e = token.find_last_not_of(" \t");
    if (b == std::string::npos) continue;
    token = token.substr(b, e - b + 1);
    if (whole_file) {
      out.file_allows.insert(token);
    } else {
      out.line_allows[line].insert(token);
    }
    out.pragmas.push_back({line, token, whole_file});
  }
}

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_char(char c) {
  return ident_start(c) || std::isdigit(static_cast<unsigned char>(c)) != 0;
}

}  // namespace

SourceFile load_source(const std::string& path) {
  SourceFile out;
  out.path = path;
  std::ifstream in(path);
  if (!in) throw std::runtime_error("predis-lint: cannot open " + path);
  std::string line;
  while (std::getline(in, line)) out.raw.push_back(line);

  bool in_block_comment = false;
  std::string raw_end;  // non-empty while inside a raw string literal
  for (std::size_t li = 0; li < out.raw.size(); ++li) {
    const std::string& src = out.raw[li];
    std::string code(src.size(), ' ');
    std::size_t i = 0;
    while (i < src.size()) {
      if (!raw_end.empty()) {
        const auto end = src.find(raw_end, i);
        if (end == std::string::npos) {
          i = src.size();
        } else {
          i = end + raw_end.size();
          raw_end.clear();
        }
        continue;
      }
      if (in_block_comment) {
        const auto end = src.find("*/", i);
        const std::size_t stop = end == std::string::npos ? src.size() : end;
        harvest_pragma(src.substr(i, stop - i), li + 1, out);
        if (end == std::string::npos) {
          i = src.size();
        } else {
          in_block_comment = false;
          i = end + 2;
        }
        continue;
      }
      const char c = src[i];
      if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
        harvest_pragma(src.substr(i + 2), li + 1, out);
        break;  // rest of line is comment
      }
      if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
        in_block_comment = true;
        i += 2;
        continue;
      }
      // Raw string literal: blank everything (possibly across lines)
      // up to the matching )delim" — embedded code in test snippets
      // must not reach the token stream.
      if (c == '"' && i > 0 && src[i - 1] == 'R') {
        const auto open = src.find('(', i + 1);
        if (open != std::string::npos) {
          raw_end = ")" + src.substr(i + 1, open - i - 1) + "\"";
          i = open + 1;
          continue;
        }
      }
      if (c == '"' || c == '\'') {
        const char quote = c;
        code[i] = quote;
        ++i;
        while (i < src.size()) {
          if (src[i] == '\\') {
            i += 2;
            continue;
          }
          if (src[i] == quote) {
            code[i] = quote;
            ++i;
            break;
          }
          ++i;
        }
        continue;
      }
      code[i] = c;
      ++i;
    }
    out.code.push_back(code);
  }
  return out;
}

std::vector<Token> tokenize(const SourceFile& file) {
  std::vector<Token> tokens;
  for (std::size_t li = 0; li < file.code.size(); ++li) {
    const std::string& s = file.code[li];
    std::size_t i = 0;
    while (i < s.size()) {
      const char c = s[i];
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++i;
        continue;
      }
      if (ident_start(c)) {
        std::size_t j = i + 1;
        while (j < s.size() && ident_char(s[j])) ++j;
        tokens.push_back({s.substr(i, j - i), li + 1, true});
        i = j;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        std::size_t j = i + 1;
        while (j < s.size() &&
               (ident_char(s[j]) || s[j] == '.' || s[j] == '\'')) {
          ++j;
        }
        tokens.push_back({s.substr(i, j - i), li + 1, false});
        i = j;
        continue;
      }
      // Two-character operators the rules care about.
      if (i + 1 < s.size()) {
        const std::string two = s.substr(i, 2);
        if (two == "::" || two == "->" || two == "&&" || two == "||" ||
            two == "==" || two == "!=" || two == ">=" || two == "<=") {
          tokens.push_back({two, li + 1, false});
          i += 2;
          continue;
        }
      }
      tokens.push_back({std::string(1, c), li + 1, false});
      ++i;
    }
  }
  return tokens;
}

std::size_t match_forward(const std::vector<Token>& t, std::size_t open) {
  const std::string& o = t[open].text;
  const std::string c = o == "(" ? ")" : o == "[" ? "]" : "}";
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].text == o) ++depth;
    if (t[i].text == c && --depth == 0) return i;
  }
  return t.size();
}

std::size_t match_backward(const std::vector<Token>& t, std::size_t close) {
  const std::string& c = t[close].text;
  const std::string o = c == ")" ? "(" : c == "]" ? "[" : "{";
  int depth = 0;
  for (std::size_t i = close + 1; i-- > 0;) {
    if (t[i].text == c) ++depth;
    if (t[i].text == o && --depth == 0) return i;
  }
  return t.size();
}

std::size_t skip_template_args(const std::vector<Token>& t, std::size_t i) {
  if (i >= t.size() || t[i].text != "<") return i;
  int depth = 0;
  std::size_t j = i;
  // Bound the scan: a genuine template argument list in this codebase
  // never spans more than a few lines.
  const std::size_t limit = std::min(t.size(), i + 256);
  while (j < limit) {
    if (t[j].text == "<") ++depth;
    if (t[j].text == ">" && --depth == 0) return j + 1;
    if (t[j].text == ";") return i;  // statement ended: was a comparison
    ++j;
  }
  return i;
}

std::string chain_starting_at(const std::vector<Token>& t, std::size_t i,
                              std::size_t limit) {
  std::string chain = t[i].text;
  std::size_t j = i;
  while (j + 2 < limit &&
         (t[j + 1].text == "." || t[j + 1].text == "->" ||
          t[j + 1].text == "::") &&
         t[j + 2].ident) {
    chain += t[j + 1].text + t[j + 2].text;
    j += 2;
  }
  return chain;
}

std::size_t chain_end_index(const std::vector<Token>& t, std::size_t i,
                            std::size_t limit) {
  std::size_t j = i;
  while (j + 2 < limit &&
         (t[j + 1].text == "." || t[j + 1].text == "->" ||
          t[j + 1].text == "::") &&
         t[j + 2].ident) {
    j += 2;
  }
  return j + 1;
}

ChainBack chain_ending_at(const std::vector<Token>& t, std::size_t i) {
  ChainBack out;
  out.root = t[i].text;
  std::vector<std::string> parts;
  std::size_t j = i;
  while (j >= 2 &&
         (t[j - 1].text == "." || t[j - 1].text == "->" ||
          t[j - 1].text == "::")) {
    if (t[j - 2].ident) {
      parts.push_back(t[j - 2].text);
      out.root = t[j - 2].text;
      j -= 2;
      continue;
    }
    if (t[j - 2].text == ")" || t[j - 2].text == "]") {
      // Prefix routes through a call or subscript: keep walking past
      // the balanced group so the root stays meaningful, but mark the
      // prefix complex (textual comparison is no longer exact).
      out.complex = true;
      const std::size_t open = match_backward(t, j - 2);
      if (open >= t.size() || open == 0 || !t[open - 1].ident) break;
      parts.push_back(t[open - 1].text);
      out.root = t[open - 1].text;
      j = open - 1;
      continue;
    }
    break;
  }
  for (std::size_t k = parts.size(); k-- > 0;) {
    if (!out.prefix.empty()) out.prefix += ".";
    out.prefix += parts[k];
  }
  return out;
}

}  // namespace predis::lint
