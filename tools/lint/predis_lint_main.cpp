// predis-lint CLI: walk the given files/directories and report every
// determinism / protocol-safety rule violation (see linter.hpp for the
// rule catalogue). Exit code 0 = clean, 1 = findings (or stale
// suppressions under --strict), 2 = usage error.
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <vector>

#include "linter.hpp"

namespace {

void usage() {
  std::printf(
      "usage: predis-lint [options] <path>...\n"
      "\n"
      "Walks .cpp/.hpp files under each path and enforces the project\n"
      "determinism & protocol-safety rules (D1-D9, S1).\n"
      "\n"
      "options:\n"
      "  --json              emit the versioned predis-lint/2 report\n"
      "  --strict            stale suppressions (S1) become errors\n"
      "  --jobs N            worker threads (0 = auto); output is\n"
      "                      deterministic either way\n"
      "  --list-rules        print the rule catalogue and exit\n"
      "  --include-fixtures  also scan lint_fixtures directories\n"
      "                      (self-test; they contain intentional\n"
      "                      violations)\n"
      "  -h, --help          this text\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  predis::lint::Options options;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--strict") {
      options.strict = true;
    } else if (arg == "--jobs" && i + 1 < argc) {
      options.jobs = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg == "--list-rules") {
      std::fputs(predis::lint::rule_catalogue(), stdout);
      return 0;
    } else if (arg == "--include-fixtures") {
      options.include_fixtures = true;
    } else if (arg == "-h" || arg == "--help") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "predis-lint: unknown option %s\n", arg.c_str());
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    usage();
    return 2;
  }

  try {
    const auto files = predis::lint::collect_sources(roots, options);
    const auto report = predis::lint::lint_tree(files, options);
    if (json) {
      std::fputs(predis::lint::to_json(report).c_str(), stdout);
    } else {
      for (const auto& d : report.diagnostics) {
        std::printf("%s:%zu: [%s] %s\n", d.file.c_str(), d.line,
                    d.rule.c_str(), d.message.c_str());
      }
      for (const auto& d : report.stale_suppressions) {
        std::printf("%s:%zu: [%s] %s%s\n", d.file.c_str(), d.line,
                    d.rule.c_str(),
                    options.strict ? "" : "warning: ", d.message.c_str());
      }
      std::printf("predis-lint: %zu file(s), %zu finding(s), %zu stale "
                  "suppression(s)\n",
                  report.files_scanned, report.diagnostics.size(),
                  report.stale_suppressions.size());
    }
    if (!report.diagnostics.empty()) return 1;
    if (options.strict && !report.stale_suppressions.empty()) return 1;
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
}
