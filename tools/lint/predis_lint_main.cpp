// predis-lint CLI: walk the given files/directories and report every
// determinism / protocol-safety rule violation (see linter.hpp for the
// rule catalogue). Exit code 0 = clean, 1 = findings, 2 = usage error.
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "linter.hpp"

namespace {

void usage() {
  std::printf(
      "usage: predis-lint [options] <path>...\n"
      "\n"
      "Walks .cpp/.hpp files under each path and enforces the project\n"
      "determinism & protocol-safety rules (D1-D5).\n"
      "\n"
      "options:\n"
      "  --json              emit diagnostics as a JSON array\n"
      "  --list-rules        print the rule catalogue and exit\n"
      "  --include-fixtures  also scan lint_fixtures directories\n"
      "                      (self-test; they contain intentional\n"
      "                      violations)\n"
      "  -h, --help          this text\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  predis::lint::Options options;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--list-rules") {
      std::fputs(predis::lint::rule_catalogue(), stdout);
      return 0;
    } else if (arg == "--include-fixtures") {
      options.include_fixtures = true;
    } else if (arg == "-h" || arg == "--help") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "predis-lint: unknown option %s\n", arg.c_str());
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    usage();
    return 2;
  }

  try {
    const auto files = predis::lint::collect_sources(roots, options);
    const auto diagnostics = predis::lint::lint_files(files);
    if (json) {
      std::fputs(predis::lint::to_json(diagnostics).c_str(), stdout);
    } else {
      for (const auto& d : diagnostics) {
        std::printf("%s:%zu: [%s] %s\n", d.file.c_str(), d.line,
                    d.rule.c_str(), d.message.c_str());
      }
      std::printf("predis-lint: %zu file(s), %zu finding(s)\n", files.size(),
                  diagnostics.size());
    }
    return diagnostics.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
}
