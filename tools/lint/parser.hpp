// predis-lint analysis core, stage 2: tokens -> declarations, function
// bodies, statement trees.
//
// The parser is declaration-aware but intentionally shallow: it
// recognizes the handful of C++ declaration shapes this codebase uses
// (container members, mutexes, timer handles, the thread_annotations
// macros), segments function definitions by brace matching, and builds
// a statement-level tree per body — enough structure for the
// intra-procedural dataflow in dataflow.cpp without becoming a
// compiler.
#pragma once

#include <optional>
#include <utility>

#include "source.hpp"

namespace predis::lint {

/// Where a pair-level symbol was declared (for reporting).
struct DeclSite {
  std::string file;
  std::size_t line = 0;
};

/// A field carrying a guarded-by annotation: touching it requires
/// holding `mutex`.
struct GuardedField {
  std::string mutex;
  DeclSite decl;
};

/// Per file-pair (foo.hpp + foo.cpp) view of declared names.
struct Symbols {
  std::set<std::string> unordered_vars;   ///< unordered_{map,set} variables.
  std::set<std::string> unordered_types;  ///< using aliases of those types.
  std::set<std::string> vector_vars;      ///< std::vector variables.

  std::map<std::string, GuardedField> guarded;  ///< D7 annotated fields.
  std::set<std::string> mutex_vars;             ///< std::mutex declarations.
  std::set<std::string> msg_derived;            ///< D9 annotated members.
  std::map<std::string, DeclSite> timer_members;  ///< TimerHandle members.
  std::set<std::string> cancelled;  ///< Names with a .cancel() call in pair.
};

void collect_symbols(const std::vector<Token>& t, const std::string& path,
                     Symbols& sym);

/// Names of project functions whose results must not be discarded
/// (non-void try_* and Expected<T>-returning declarations), collected
/// across every scanned header.
using MustCheck = std::set<std::string>;

const std::set<std::string>& std_try_names();

/// Walk back from a candidate declaration name to the statement
/// boundary, collecting the return-type span. Returns nullopt when the
/// site is an expression (call), not a declaration.
std::optional<std::vector<std::string>> decl_span_before(
    const std::vector<Token>& t, std::size_t name_idx);

bool span_has(const std::vector<std::string>& span, const std::string& word);

bool is_header(const std::string& path);

// ---------------------------------------------------------------------------
// Function segmentation.
// ---------------------------------------------------------------------------

struct Function {
  std::string name;
  std::size_t params_open = 0;  ///< Index of "(".
  std::size_t params_close = 0;
  std::size_t body_open = 0;    ///< Index of "{".
  std::size_t body_close = 0;
};

const std::set<std::string>& control_keywords();

/// Best-effort function-definition finder: `name ( ... ) [qualifiers] {`.
/// Constructor initializer lists are skipped by balancing parens and
/// member brace-inits until the body brace.
std::vector<Function> segment_functions(const std::vector<Token>& t);

/// Token ranges [begin, end) of the top-level parameters.
std::vector<std::pair<std::size_t, std::size_t>> split_params(
    const std::vector<Token>& t, const Function& fn);

/// Message-handler signature: the sender-id parameter name (NodeId /
/// size_t typed) and the *Msg-typed parameter name, either may be "".
struct HandlerSig {
  std::string sender;
  std::string msg_param;
};

HandlerSig handler_signature(const std::vector<Token>& t, const Function& fn);

// ---------------------------------------------------------------------------
// Statement tree.
// ---------------------------------------------------------------------------

enum class StmtKind { kBlock, kIf, kFor, kWhile, kDo, kSwitch, kSimple };

/// One statement, with token range [begin, end). Control statements
/// carry the range inside their head parens and their sub-statements as
/// children (if: then[, else]; loops/switch: the body; block: each
/// statement in order).
struct Stmt {
  StmtKind kind = StmtKind::kSimple;
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t head_b = 0;  ///< First token inside the control parens.
  std::size_t head_e = 0;  ///< The closing paren.
  bool has_else = false;
  std::vector<Stmt> children;
};

/// Parse the body of `fn` into a kBlock statement tree. Never throws:
/// malformed regions degrade into kSimple statements.
Stmt parse_body(const std::vector<Token>& t, const Function& fn);

/// True when control cannot fall out of the end of `s` (its last
/// reachable statement is return/break/continue/throw). Used by the
/// dataflow walkers to decide whether an `if (bad) return;` guard
/// dominates the code after the if.
bool stmt_terminal(const std::vector<Token>& t, const Stmt& s);

/// Parameter names plus best-effort local declarations of `fn` — the
/// shadow set: an unqualified use of one of these names refers to the
/// local, not to a same-named member.
std::set<std::string> local_names(const std::vector<Token>& t,
                                  const Function& fn);

}  // namespace predis::lint
