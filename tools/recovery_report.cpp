// recovery_report — crash-recovery & state-sync campaign. Runs three
// recovery scenarios (crash/restart, churn storm, minority partition
// with scheduled heal) against all five protocols via the swarm
// harness and compares each against a clean same-seed baseline. Every
// cell reports the recovery-subsystem counters: time-to-catch-up after
// the last heal, post-heal throughput ratio, catch-up batches, stall
// escalations, state transfers, and log bytes garbage-collected below
// stable checkpoints. Emits machine-readable BENCH_recovery.json.
//
// The point is that recovery is *bounded*: a node that crashed or sat
// on the cut side of a partition must resume committing shortly after
// the heal, and the logs it replays from must stay bounded by GC.
// --strict turns safety + liveness-after-heal into exit codes.
//
// Usage: recovery_report [--smoke] [--strict] [--out-dir DIR]
//   --smoke    reduced durations (CI-sized runs)
//   --strict   exit non-zero on a safety violation, a dead cell, or a
//              scenario that injected no faults
//   --out-dir  directory for BENCH_recovery.json (default: cwd)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/swarm.hpp"
#include "sim/faults.hpp"

namespace {

using predis::core::Protocol;

struct JsonWriter {
  std::string buf;
  void raw(const std::string& s) { buf += s; }
  void kv(const char* key, double v, bool comma = true) {
    char tmp[96];
    std::snprintf(tmp, sizeof(tmp), "\"%s\": %.3f%s", key, v,
                  comma ? ", " : "");
    buf += tmp;
  }
  void kv(const char* key, std::size_t v, bool comma = true) {
    char tmp[96];
    std::snprintf(tmp, sizeof(tmp), "\"%s\": %zu%s", key, v,
                  comma ? ", " : "");
    buf += tmp;
  }
  void kv(const char* key, const char* v, bool comma = true) {
    buf += std::string("\"") + key + "\": \"" + v + "\"" +
           (comma ? ", " : "");
  }
  void kv(const char* key, bool v, bool comma = true) {
    buf += std::string("\"") + key + "\": " + (v ? "true" : "false") +
           (comma ? ", " : "");
  }
};

/// One (protocol, scenario) measurement, clean-relative.
struct Cell {
  std::string scenario;
  bool safe = true;   ///< All safety invariants held.
  bool alive = true;  ///< Committed something despite the faults.
  std::uint64_t committed_txs = 0;
  double throughput_ratio = 0.0;  ///< faulted / clean committed txs.
  double post_heal_ratio = 0.0;   ///< post-heal tps / clean whole-run tps.
  double catch_up_ms = 0.0;       ///< Slowest node's resume gap.
  std::uint64_t catch_up_batches = 0;
  std::size_t sync_stalls = 0;
  std::size_t state_transfers = 0;
  std::uint64_t gc_bytes = 0;
  std::uint64_t gc_items = 0;
  std::size_t duplicate_payloads = 0;
  std::size_t faults_injected = 0;
  std::string detail;  ///< Violations, if any.
};

struct ProtocolReport {
  std::string name;
  std::uint64_t clean_committed = 0;
  double clean_tps = 0.0;
  std::uint64_t clean_gc_bytes = 0;
  std::vector<Cell> cells;
};

struct Scenario {
  const char* name;
  void (*shape)(predis::sim::FaultPlanConfig&);
};

/// Disable every default-on baseline kind so each scenario exercises
/// exactly one recovery path.
void quiesce(predis::sim::FaultPlanConfig& plan) {
  plan.crashes = false;
  plan.pair_partitions = false;
  plan.zone_partitions = false;
  plan.jitter = false;
  plan.drops = false;
  plan.equivocation = false;
}

constexpr Scenario kScenarios[] = {
    {"crash_restart",
     [](predis::sim::FaultPlanConfig& plan) {
       quiesce(plan);
       plan.crashes = true;
     }},
    {"churn_storm",
     [](predis::sim::FaultPlanConfig& plan) {
       quiesce(plan);
       plan.churn_storms = true;
     }},
    {"partition_heal",
     [](predis::sim::FaultPlanConfig& plan) {
       quiesce(plan);
       plan.partitions = true;
     }},
};

predis::core::SwarmCaseConfig swarm_base(Protocol protocol, bool smoke) {
  predis::core::SwarmCaseConfig cfg;
  cfg.protocol = protocol;
  cfg.n_consensus = 4;
  cfg.f = 1;
  cfg.offered_load_tps = 2'000.0;
  cfg.duration = smoke ? predis::seconds(6) : predis::seconds(10);
  cfg.seed = 42;
  cfg.faults.events = smoke ? 2 : 3;
  // Leave a generous clean tail after the last heal: time-to-catch-up
  // and post-heal throughput need room to be measured.
  cfg.faults.horizon = cfg.duration - predis::seconds(3);
  return cfg;
}

ProtocolReport run_campaign(Protocol protocol, bool smoke) {
  ProtocolReport report;
  report.name = predis::core::to_string(protocol);

  // Clean baseline: same seed and scheduling, empty fault plan.
  predis::core::SwarmCaseConfig clean_cfg = swarm_base(protocol, smoke);
  quiesce(clean_cfg.faults);
  const auto clean = predis::core::run_swarm_case(clean_cfg);
  report.clean_committed = clean.committed_txs;
  report.clean_tps = clean.throughput_tps;
  report.clean_gc_bytes = clean.gc_bytes;

  for (const Scenario& scenario : kScenarios) {
    predis::core::SwarmCaseConfig cfg = swarm_base(protocol, smoke);
    scenario.shape(cfg.faults);
    const auto r = predis::core::run_swarm_case(cfg);

    Cell cell;
    cell.scenario = scenario.name;
    cell.safe = r.ok;
    cell.committed_txs = r.committed_txs;
    cell.alive = r.committed_txs > 0;
    cell.throughput_ratio =
        clean.committed_txs == 0
            ? 0.0
            : static_cast<double>(r.committed_txs) /
                  static_cast<double>(clean.committed_txs);
    cell.post_heal_ratio =
        clean.throughput_tps <= 0.0 ? 0.0
                                    : r.post_heal_tps / clean.throughput_tps;
    cell.catch_up_ms = r.catch_up_ms;
    cell.catch_up_batches = r.catch_up_batches;
    cell.sync_stalls = r.sync_stalls;
    cell.state_transfers = r.state_transfers;
    cell.gc_bytes = r.gc_bytes;
    cell.gc_items = r.gc_items;
    cell.duplicate_payloads = r.duplicate_payloads;
    cell.faults_injected = r.faults_injected;
    if (!r.ok) cell.detail = r.report;
    report.cells.push_back(std::move(cell));
  }
  return report;
}

// --- Reporting ---------------------------------------------------------

void print_report(const ProtocolReport& r) {
  std::printf("\n=== %s ===\n", r.name.c_str());
  std::printf("  clean: %llu txs, %.1f tx/s, gc %llu B\n",
              static_cast<unsigned long long>(r.clean_committed),
              r.clean_tps,
              static_cast<unsigned long long>(r.clean_gc_bytes));
  std::printf("  %-15s %5s %6s %8s %10s %10s %8s %7s %10s %6s\n",
              "scenario", "safe", "ratio", "postheal", "catchup ms",
              "batches", "stalls", "xfers", "gc bytes", "dups");
  for (const Cell& c : r.cells) {
    std::printf(
        "  %-15s %5s %6.2f %8.2f %10.1f %10llu %8zu %7zu %10llu %6zu\n",
        c.scenario.c_str(), c.safe ? "yes" : "NO", c.throughput_ratio,
        c.post_heal_ratio, c.catch_up_ms,
        static_cast<unsigned long long>(c.catch_up_batches), c.sync_stalls,
        c.state_transfers, static_cast<unsigned long long>(c.gc_bytes),
        c.duplicate_payloads);
    if (!c.detail.empty()) std::printf("%s", c.detail.c_str());
  }
}

void report_json(JsonWriter& j, const ProtocolReport& r, bool last) {
  j.raw("    {");
  j.kv("protocol", r.name.c_str());
  j.raw("\"clean\": {");
  j.kv("committed_txs", static_cast<std::size_t>(r.clean_committed));
  j.kv("throughput_tps", r.clean_tps);
  j.kv("gc_bytes", static_cast<std::size_t>(r.clean_gc_bytes), false);
  j.raw("},\n      \"scenarios\": [\n");
  for (std::size_t i = 0; i < r.cells.size(); ++i) {
    const Cell& c = r.cells[i];
    j.raw("        {");
    j.kv("scenario", c.scenario.c_str());
    j.kv("safe", c.safe);
    j.kv("alive", c.alive);
    j.kv("committed_txs", static_cast<std::size_t>(c.committed_txs));
    j.kv("throughput_ratio", c.throughput_ratio);
    j.kv("post_heal_ratio", c.post_heal_ratio);
    j.kv("catch_up_ms", c.catch_up_ms);
    j.kv("catch_up_batches", static_cast<std::size_t>(c.catch_up_batches));
    j.kv("sync_stalls", c.sync_stalls);
    j.kv("state_transfers", c.state_transfers);
    j.kv("gc_bytes", static_cast<std::size_t>(c.gc_bytes));
    j.kv("gc_items", static_cast<std::size_t>(c.gc_items));
    j.kv("duplicate_payloads", c.duplicate_payloads);
    j.kv("faults_injected", c.faults_injected, false);
    j.raw(i + 1 < r.cells.size() ? "},\n" : "}\n");
  }
  j.raw(last ? "      ]}\n" : "      ]},\n");
}

int write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "recovery_report: cannot write %s\n", path.c_str());
    return 1;
  }
  out << content;
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool strict = false;
  std::string out_dir = ".";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else if (std::strcmp(argv[i], "--out-dir") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: recovery_report [--smoke] [--strict] "
                   "[--out-dir DIR]\n");
      return 2;
    }
  }

  std::vector<ProtocolReport> reports;
  reports.push_back(run_campaign(Protocol::kPredisPbft, smoke));
  reports.push_back(run_campaign(Protocol::kPbft, smoke));
  reports.push_back(run_campaign(Protocol::kHotStuff, smoke));
  reports.push_back(run_campaign(Protocol::kPredisHotStuff, smoke));
  reports.push_back(run_campaign(Protocol::kNarwhal, smoke));

  bool all_safe = true;
  bool all_alive = true;
  bool all_fired = true;
  for (const ProtocolReport& r : reports) {
    print_report(r);
    for (const Cell& c : r.cells) {
      all_safe = all_safe && c.safe;
      all_alive = all_alive && c.alive;
      all_fired = all_fired && c.faults_injected > 0;
    }
  }

  JsonWriter j;
  j.raw("{\n  ");
  j.kv("schema", "predis-recovery/1");
  j.kv("tool", "recovery_report");
  j.kv("smoke", smoke);
  j.kv("all_safe", all_safe);
  j.kv("all_alive", all_alive);
  j.raw("\"protocols\": [\n");
  for (std::size_t i = 0; i < reports.size(); ++i) {
    report_json(j, reports[i], i + 1 == reports.size());
  }
  j.raw("  ]\n}\n");

  const int write_rc = write_file(out_dir + "/BENCH_recovery.json", j.buf);

  std::printf("\nsummary: safety %s, liveness %s, fault injection %s\n",
              all_safe ? "ok" : "VIOLATED", all_alive ? "ok" : "DEAD CELL",
              all_fired ? "ok" : "SILENT");
  if (write_rc != 0) return write_rc;
  if (strict && (!all_safe || !all_alive || !all_fired)) return 1;
  return 0;
}
