// adversary_report — graceful-degradation campaign. Runs every attack
// archetype (throttle, withhold, garbage, churn storm) against all five
// protocols — Predis (P-PBFT), PBFT, HotStuff, Narwhal via the swarm
// harness, Multi-Zone gossip via the Fig. 7 distribution runner — and
// compares each attacked run against a clean same-seed baseline:
// committed-throughput ratio, p99 consensus latency, and every safety
// invariant. Emits machine-readable BENCH_adversarial.json.
//
// The point is *graceful* degradation: a single adversary (within the
// f-budget) may slow the system down, but every cell must stay safe and
// keep committing. --strict turns both properties into exit codes.
//
// Usage: adversary_report [--smoke] [--strict] [--out-dir DIR]
//   --smoke    reduced durations (CI-sized runs)
//   --strict   exit non-zero on a safety violation, a liveness-dead
//              attacked cell, or a silent attack (garbage cell that
//              injected nothing)
//   --out-dir  directory for BENCH_adversarial.json (default: cwd)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/block_tracer.hpp"
#include "common/thread_annotations.hpp"
#include "core/swarm.hpp"
#include "multizone/experiments.hpp"
#include "sim/faults.hpp"

namespace {

using predis::core::AttackKind;
using predis::core::Protocol;

struct JsonWriter {
  std::string buf;
  void raw(const std::string& s) { buf += s; }
  void kv(const char* key, double v, bool comma = true) {
    char tmp[96];
    std::snprintf(tmp, sizeof(tmp), "\"%s\": %.3f%s", key, v,
                  comma ? ", " : "");
    buf += tmp;
  }
  void kv(const char* key, std::size_t v, bool comma = true) {
    char tmp[96];
    std::snprintf(tmp, sizeof(tmp), "\"%s\": %zu%s", key, v,
                  comma ? ", " : "");
    buf += tmp;
  }
  void kv(const char* key, const char* v, bool comma = true) {
    buf += std::string("\"") + key + "\": \"" + v + "\"" +
           (comma ? ", " : "");
  }
  void kv(const char* key, bool v, bool comma = true) {
    buf += std::string("\"") + key + "\": " + (v ? "true" : "false") +
           (comma ? ", " : "");
  }
};

/// One (protocol, attack) measurement, clean-relative.
struct Cell {
  std::string attack;
  bool safe = true;          ///< All safety invariants held.
  bool alive = true;         ///< Committed something under attack.
  std::uint64_t committed_txs = 0;
  double throughput_tps = 0.0;
  double p99_ms = 0.0;       ///< Consensus-layer end-to-end p99.
  double throughput_ratio = 0.0;  ///< attacked / clean committed txs.
  std::size_t hostile_msgs = 0;
  std::size_t faults_injected = 0;
  std::string detail;        ///< Violations, if any.
};

struct ProtocolReport {
  std::string name;
  std::uint64_t clean_committed = 0;
  double clean_tps = 0.0;
  double clean_p99_ms = 0.0;
  std::vector<Cell> cells;
};

constexpr AttackKind kCampaign[] = {
    AttackKind::kThrottle, AttackKind::kWithhold, AttackKind::kGarbage,
    AttackKind::kChurnStorm};

// --- Swarm-harness protocols (consensus-layer campaign) ----------------

predis::core::SwarmCaseConfig swarm_base(Protocol protocol, bool smoke) {
  predis::core::SwarmCaseConfig cfg;
  cfg.protocol = protocol;
  cfg.n_consensus = 4;
  cfg.f = 1;
  cfg.offered_load_tps = 2'000.0;
  cfg.duration = smoke ? predis::seconds(6) : predis::seconds(10);
  cfg.seed = 42;
  cfg.faults.events = smoke ? 2 : 3;
  cfg.faults.horizon = cfg.duration - predis::seconds(2);
  return cfg;
}

ProtocolReport run_swarm_campaign(Protocol protocol, bool smoke) {
  ProtocolReport report;
  report.name = predis::core::to_string(protocol);

  // Clean baseline: same seed and scheduling, empty fault plan.
  predis::core::SwarmCaseConfig clean_cfg = swarm_base(protocol, smoke);
  predis::core::configure_attack(clean_cfg.faults, AttackKind::kNone, 0);
  const auto clean = predis::core::run_swarm_case(clean_cfg);
  report.clean_committed = clean.committed_txs;
  report.clean_tps = clean.throughput_tps;
  report.clean_p99_ms = clean.production_p99_ms;

  for (AttackKind attack : kCampaign) {
    predis::core::SwarmCaseConfig cfg = swarm_base(protocol, smoke);
    cfg.attack = attack;
    const auto r = predis::core::run_swarm_case(cfg);

    Cell cell;
    cell.attack = predis::core::to_string(attack);
    cell.safe = r.ok;
    cell.committed_txs = r.committed_txs;
    cell.alive = r.committed_txs > 0;
    cell.throughput_tps = r.throughput_tps;
    cell.p99_ms = r.production_p99_ms;
    cell.throughput_ratio =
        clean.committed_txs == 0
            ? 0.0
            : static_cast<double>(r.committed_txs) /
                  static_cast<double>(clean.committed_txs);
    cell.hostile_msgs = r.hostile_msgs;
    cell.faults_injected = r.faults_injected;
    if (!r.ok) cell.detail = r.report;
    report.cells.push_back(std::move(cell));
  }
  return report;
}

// --- Multi-Zone gossip (distribution-layer campaign) -------------------

/// Fault-plan shaping for the gossip layer mirrors configure_attack but
/// targets live in the distribution layer: throttle hits a consensus
/// stripe source, withhold/garbage/churn hit full nodes (the first-
/// joined node of zone 0, which Algorithm 1 makes a relayer).
struct GossipCampaignState {
  std::unique_ptr<predis::sim::FaultScheduler> faults;
  std::size_t hostile_msgs = 0;
};

predis::multizone::ThroughputConfig gossip_base(bool smoke) {
  predis::multizone::ThroughputConfig cfg;
  cfg.topology = predis::multizone::Topology::kMultiZone;
  cfg.n_consensus = 4;
  cfg.f = 1;
  cfg.n_full = smoke ? 6 : 12;
  cfg.n_zones = 3;
  cfg.offered_load_tps = smoke ? 3'000.0 : 8'000.0;
  cfg.duration = smoke ? predis::seconds(6) : predis::seconds(10);
  cfg.warmup = predis::seconds(2);
  cfg.seed = 42;
  return cfg;
}

/// The runner starts clients only after topology convergence; faults
/// must strike inside the measured window, so mirror its setup formula.
predis::SimTime gossip_setup_time(
    const predis::multizone::ThroughputConfig& cfg) {
  return static_cast<predis::SimTime>(cfg.n_full) *
             predis::milliseconds(120) +
         predis::milliseconds(1500);
}

ProtocolReport run_gossip_campaign(bool smoke) {
  ProtocolReport report;
  report.name = "multizone_gossip";

  auto run_one = [&](AttackKind attack, GossipCampaignState& state) {
    predis::multizone::ThroughputConfig cfg = gossip_base(smoke);
    predis::BlockTracer tracer(cfg.n_consensus - cfg.f);
    cfg.ctx.tracer = &tracer;

    if (attack != AttackKind::kNone) {
      const predis::SimTime setup = gossip_setup_time(cfg);
      cfg.ctx.on_network_ready = [&, setup](
                                 predis::runtime::Runtime& net,
                                 const std::vector<predis::NodeId>& consensus,
                                 const std::vector<predis::NodeId>& full) {
        predis::sim::FaultPlanConfig plan;
        predis::core::configure_attack(plan, attack, smoke ? 2 : 3);
        plan.seed = cfg.seed;
        plan.start = setup + predis::seconds(1);
        plan.horizon = setup + cfg.duration - predis::seconds(1);
        // Throttling a stripe source degrades the whole fan-out tree;
        // the other attacks come from inside the full-node swarm.
        const bool consensus_side = attack == AttackKind::kThrottle;
        const auto& targets = consensus_side ? consensus : full;
        state.faults = std::make_unique<predis::sim::FaultScheduler>(
            net, targets, plan);
        state.faults->on_garbage = [&state, &net, consensus, full](
                                       predis::NodeId id,
                                       predis::SimTime window) {
          // Hostile gossip toward every consensus node plus a slice of
          // full-node peers, in bursts spread over the fault window.
          std::vector<predis::NodeId> peers = consensus;
          for (std::size_t i = 0; i < full.size() && i < 4; ++i) {
            if (full[i] != id) peers.push_back(full[i]);
          }
          constexpr std::size_t kBursts = 4;
          for (std::size_t b = 0; b < kBursts; ++b) {
            PREDIS_FIRE_AND_FORGET(net.schedule_after(
                window * static_cast<predis::SimTime>(b) /
                    static_cast<predis::SimTime>(kBursts),
                [&state, &net, id, peers, b] {
                  state.hostile_msgs += predis::core::hostile_gossip_burst(
                      net, id, peers, 4, b);
                }));
          }
        };
        state.faults->arm();
      };
    }

    const auto r = predis::multizone::run_distribution_cluster(cfg);

    Cell cell;
    cell.attack = predis::core::to_string(attack);
    cell.safe = r.consistent;
    cell.throughput_tps = r.throughput_tps;
    cell.committed_txs = static_cast<std::uint64_t>(r.last_executed_min);
    cell.alive = r.throughput_tps > 0.0;
    for (const predis::TraceStageStats& st : r.stage_latency) {
      if (st.name == "end_to_end" && st.count > 0) cell.p99_ms = st.p99_ms;
    }
    cell.hostile_msgs = state.hostile_msgs;
    cell.faults_injected =
        state.faults ? state.faults->faults_injected() : 0;
    return cell;
  };

  GossipCampaignState clean_state;
  const Cell clean = run_one(AttackKind::kNone, clean_state);
  report.clean_committed = clean.committed_txs;
  report.clean_tps = clean.throughput_tps;
  report.clean_p99_ms = clean.p99_ms;

  for (AttackKind attack : kCampaign) {
    GossipCampaignState state;
    Cell cell = run_one(attack, state);
    cell.throughput_ratio =
        clean.throughput_tps <= 0.0
            ? 0.0
            : cell.throughput_tps / clean.throughput_tps;
    report.cells.push_back(std::move(cell));
  }
  return report;
}

// --- Reporting ---------------------------------------------------------

void print_report(const ProtocolReport& r) {
  std::printf("\n=== %s ===\n", r.name.c_str());
  std::printf("  clean: %llu txs, %.1f tx/s, p99 %.1f ms\n",
              static_cast<unsigned long long>(r.clean_committed),
              r.clean_tps, r.clean_p99_ms);
  std::printf("  %-12s %6s %6s %12s %10s %10s %8s %8s\n", "attack", "safe",
              "alive", "committed", "ratio", "p99 ms", "hostile",
              "faults");
  for (const Cell& c : r.cells) {
    std::printf("  %-12s %6s %6s %12llu %10.2f %10.1f %8zu %8zu\n",
                c.attack.c_str(), c.safe ? "yes" : "NO",
                c.alive ? "yes" : "NO",
                static_cast<unsigned long long>(c.committed_txs),
                c.throughput_ratio, c.p99_ms, c.hostile_msgs,
                c.faults_injected);
    if (!c.detail.empty()) std::printf("%s", c.detail.c_str());
  }
}

void report_json(JsonWriter& j, const ProtocolReport& r, bool last) {
  j.raw("    {");
  j.kv("protocol", r.name.c_str());
  j.raw("\"clean\": {");
  j.kv("committed_txs", static_cast<std::size_t>(r.clean_committed));
  j.kv("throughput_tps", r.clean_tps);
  j.kv("p99_ms", r.clean_p99_ms, false);
  j.raw("},\n      \"attacks\": [\n");
  for (std::size_t i = 0; i < r.cells.size(); ++i) {
    const Cell& c = r.cells[i];
    j.raw("        {");
    j.kv("attack", c.attack.c_str());
    j.kv("safe", c.safe);
    j.kv("alive", c.alive);
    j.kv("committed_txs", static_cast<std::size_t>(c.committed_txs));
    j.kv("throughput_tps", c.throughput_tps);
    j.kv("throughput_ratio", c.throughput_ratio);
    j.kv("p99_ms", c.p99_ms);
    j.kv("hostile_msgs", c.hostile_msgs);
    j.kv("faults_injected", c.faults_injected, false);
    j.raw(i + 1 < r.cells.size() ? "},\n" : "}\n");
  }
  j.raw(last ? "      ]}\n" : "      ]},\n");
}

int write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "adversary_report: cannot write %s\n",
                 path.c_str());
    return 1;
  }
  out << content;
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool strict = false;
  std::string out_dir = ".";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else if (std::strcmp(argv[i], "--out-dir") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: adversary_report [--smoke] [--strict] "
                   "[--out-dir DIR]\n");
      return 2;
    }
  }

  std::vector<ProtocolReport> reports;
  reports.push_back(run_swarm_campaign(Protocol::kPredisPbft, smoke));
  reports.push_back(run_swarm_campaign(Protocol::kPbft, smoke));
  reports.push_back(run_swarm_campaign(Protocol::kHotStuff, smoke));
  reports.push_back(run_swarm_campaign(Protocol::kNarwhal, smoke));
  reports.push_back(run_gossip_campaign(smoke));

  bool all_safe = true;
  bool all_alive = true;
  bool garbage_fired = true;
  for (const ProtocolReport& r : reports) {
    print_report(r);
    for (const Cell& c : r.cells) {
      all_safe = all_safe && c.safe;
      all_alive = all_alive && c.alive;
      if (c.attack == std::string("garbage")) {
        garbage_fired = garbage_fired && c.hostile_msgs > 0;
      }
    }
  }

  JsonWriter j;
  j.raw("{\n  ");
  j.kv("schema", "predis-adversarial/1");
  j.kv("tool", "adversary_report");
  j.kv("smoke", smoke);
  j.kv("all_safe", all_safe);
  j.kv("all_alive", all_alive);
  j.raw("\"protocols\": [\n");
  for (std::size_t i = 0; i < reports.size(); ++i) {
    report_json(j, reports[i], i + 1 == reports.size());
  }
  j.raw("  ]\n}\n");

  const int write_rc = write_file(out_dir + "/BENCH_adversarial.json",
                                  j.buf);

  std::printf("\nsummary: safety %s, liveness %s, garbage injection %s\n",
              all_safe ? "ok" : "VIOLATED",
              all_alive ? "ok" : "DEAD CELL",
              garbage_fired ? "ok" : "SILENT");
  if (write_rc != 0) return write_rc;
  if (strict && (!all_safe || !all_alive || !garbage_fired)) return 1;
  return 0;
}
