// trace_report — end-to-end data-flow observability report. Runs one
// small simulation per protocol family with a shared BlockTracer wired
// through txpool -> consensus -> distribution, renders per-stage
// latency tables, scans the traces for anomalies (stalled blocks,
// re-ban storms, pull spirals) and emits machine-readable
// BENCH_latency.json.
//
// A built-in self-test feeds the anomaly detectors synthetic traces
// shaped like the pre-fix bugs (duplicate rejoin timers re-banning the
// same producer, a gossip node pulling one block forever, a committed
// block that never reconstructs) and asserts each one fires; the live
// post-fix runs must scan clean.
//
// Usage: trace_report [--smoke] [--strict] [--out-dir DIR]
//   --smoke    reduced durations (CI-sized runs)
//   --strict   exit non-zero on anomalies, self-test failure or a
//              schema hole (a scenario missing its expected stages)
//   --out-dir  directory for BENCH_latency.json (default: cwd)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/block_tracer.hpp"
#include "common/metrics_registry.hpp"
#include "core/experiment.hpp"
#include "multizone/experiments.hpp"

namespace {

using predis::BlockTracer;
using predis::MetricsRegistry;
using predis::TraceAnomaly;
using predis::TraceStageStats;

struct JsonWriter {
  std::string buf;
  void raw(const std::string& s) { buf += s; }
  void kv(const char* key, double v, bool comma = true) {
    char tmp[96];
    std::snprintf(tmp, sizeof(tmp), "\"%s\": %.3f%s", key, v,
                  comma ? ", " : "");
    buf += tmp;
  }
  void kv(const char* key, std::size_t v, bool comma = true) {
    char tmp[96];
    std::snprintf(tmp, sizeof(tmp), "\"%s\": %zu%s", key, v,
                  comma ? ", " : "");
    buf += tmp;
  }
  void kv(const char* key, const char* v, bool comma = true) {
    buf += std::string("\"") + key + "\": \"" + v + "\"" +
           (comma ? ", " : "");
  }
  void kv(const char* key, bool v, bool comma = true) {
    buf += std::string("\"") + key + "\": " + (v ? "true" : "false") +
           (comma ? ", " : "");
  }
};

/// One protocol family's run reduced to what the report needs.
struct Scenario {
  std::string name;
  std::string description;
  std::vector<TraceStageStats> stages;
  std::vector<TraceAnomaly> anomalies;
  /// Attributed worst samples of the scenario's tail stage (printed so
  /// a straggler is a (block, node, pulls) fact, not just a number).
  std::vector<std::string> outliers;
  std::string metrics_json;       ///< Folded MetricsRegistry export.
  double headline = 0.0;          ///< tps or coverage, see unit.
  const char* headline_unit = "";
  /// Interval names that must appear with count > 0 for the scenario's
  /// BENCH_latency.json block to be considered schema-complete.
  std::vector<std::string> required_stages;
};

bool has_stage(const Scenario& s, const std::string& name) {
  for (const TraceStageStats& st : s.stages) {
    if (st.name == name && st.count > 0) return true;
  }
  return false;
}

void print_scenario(const Scenario& s) {
  std::printf("\n=== %s — %s ===\n", s.name.c_str(),
              s.description.c_str());
  std::printf("  headline: %.1f %s\n", s.headline, s.headline_unit);
  std::printf("  %-18s %8s %10s %10s %10s %10s %10s %10s\n", "stage",
              "count", "mean ms", "p50 ms", "p95 ms", "p99 ms", "p99.9 ms",
              "max ms");
  for (const TraceStageStats& st : s.stages) {
    std::printf("  %-18s %8zu %10.2f %10.2f %10.2f %10.2f %10.2f %10.2f\n",
                st.name.c_str(), st.count, st.mean_ms, st.p50_ms, st.p95_ms,
                st.p99_ms, st.p999_ms, st.max_ms);
  }
  for (const std::string& line : s.outliers) {
    std::printf("  outlier: %s\n", line.c_str());
  }
  if (s.anomalies.empty()) {
    std::printf("  anomalies: none\n");
  } else {
    for (const TraceAnomaly& a : s.anomalies) {
      std::printf("  ANOMALY: %s\n", a.describe().c_str());
    }
  }
}

/// Render the k worst samples of `stage` as attribution lines.
std::vector<std::string> outlier_lines(const BlockTracer& tracer,
                                       const char* stage, std::size_t k) {
  std::vector<std::string> out;
  for (const predis::TraceIntervalSample& s : tracer.top_samples(stage, k)) {
    char tmp[192];
    std::snprintf(tmp, sizeof(tmp),
                  "%s %.1f ms: block %s node %u (%.1f -> %.1f ms, %zu pulls)",
                  stage, s.ms, predis::short_hex(s.key).c_str(), s.node,
                  predis::to_milliseconds(s.from),
                  predis::to_milliseconds(s.to),
                  tracer.pull_count(s.key, s.node));
    out.emplace_back(tmp);
  }
  return out;
}

void scenario_json(JsonWriter& j, const Scenario& s, bool last) {
  j.raw("    {");
  j.kv("name", s.name.c_str());
  j.kv("description", s.description.c_str());
  j.kv("headline", s.headline);
  j.kv("headline_unit", s.headline_unit);
  j.kv("anomalies", s.anomalies.size());
  j.kv("clean", s.anomalies.empty());
  j.raw("\"stages\": [\n");
  for (std::size_t i = 0; i < s.stages.size(); ++i) {
    const TraceStageStats& st = s.stages[i];
    j.raw("      {");
    j.kv("name", st.name.c_str());
    j.kv("count", st.count);
    j.kv("mean_ms", st.mean_ms);
    j.kv("p50_ms", st.p50_ms);
    j.kv("p95_ms", st.p95_ms);
    j.kv("p99_ms", st.p99_ms);
    j.kv("p999_ms", st.p999_ms);
    j.kv("max_ms", st.max_ms);
    j.raw("\"top_ms\": [");
    for (std::size_t t = 0; t < st.top_ms.size(); ++t) {
      char tmp[48];
      std::snprintf(tmp, sizeof(tmp), "%s%.3f", t ? ", " : "",
                    st.top_ms[t]);
      j.raw(tmp);
    }
    j.raw("]");
    j.raw(i + 1 < s.stages.size() ? "},\n" : "}\n");
  }
  j.raw("    ],\n    \"metrics\": ");
  j.raw(s.metrics_json);
  j.raw(last ? "}\n" : "},\n");
}

std::string fold_metrics(const BlockTracer& tracer) {
  MetricsRegistry registry;
  tracer.fold_into(registry);
  return registry.to_json();
}

// --- Live scenarios ----------------------------------------------------

Scenario run_multizone(bool smoke) {
  predis::multizone::ThroughputConfig cfg;
  cfg.topology = predis::multizone::Topology::kMultiZone;
  cfg.n_consensus = 4;
  cfg.f = 1;
  cfg.n_full = smoke ? 6 : 12;
  cfg.n_zones = 3;
  cfg.offered_load_tps = smoke ? 3'000.0 : 8'000.0;
  cfg.duration = smoke ? predis::seconds(6) : predis::seconds(10);
  cfg.warmup = predis::seconds(2);
  BlockTracer tracer(cfg.n_consensus - cfg.f);
  tracer.expect_reconstruction(true);
  cfg.ctx.tracer = &tracer;
  const auto r = predis::multizone::run_distribution_cluster(cfg);

  Scenario s;
  s.name = "predis_multizone";
  s.description = "P-PBFT + Multi-Zone distribution (Fig. 7 shape)";
  s.stages = r.stage_latency;
  s.anomalies = tracer.anomalies(cfg.duration);
  s.outliers = outlier_lines(tracer, "distribution", 5);
  s.metrics_json = fold_metrics(tracer);
  s.headline = r.throughput_tps;
  s.headline_unit = "tx/s";
  s.required_stages = {"tx_wait", "bundle_quorum", "production",
                       "stripes_sent", "pre_distribution",
                       "distribution", "end_to_end"};
  return s;
}

Scenario run_baseline(predis::core::Protocol protocol, bool smoke) {
  predis::core::ClusterConfig cfg;
  cfg.protocol = protocol;
  cfg.n_consensus = 4;
  cfg.f = 1;
  cfg.offered_load_tps = smoke ? 2'000.0 : 6'000.0;
  cfg.duration = smoke ? predis::seconds(6) : predis::seconds(10);
  cfg.warmup = predis::seconds(2);
  BlockTracer tracer(cfg.n_consensus - cfg.f);
  cfg.ctx.tracer = &tracer;
  const auto r = predis::core::run_cluster(cfg);

  Scenario s;
  s.name = predis::core::to_string(protocol);
  s.description = std::string("baseline ") + s.name + " cluster (WAN)";
  s.stages = r.stage_latency;
  s.anomalies = tracer.anomalies(cfg.duration);
  s.metrics_json = fold_metrics(tracer);
  s.headline = r.throughput_tps;
  s.headline_unit = "tx/s";
  s.required_stages = {"production"};
  return s;
}

Scenario run_gossip(bool smoke) {
  predis::multizone::PropagationConfig cfg;
  cfg.topology = predis::multizone::Topology::kRandom;
  cfg.n_consensus = 4;
  cfg.f = 1;
  cfg.n_full = smoke ? 16 : 40;
  cfg.peers = 4;
  cfg.fanout = 3;
  cfg.block_bytes = smoke ? (256 << 10) : (1 << 20);
  cfg.n_blocks = smoke ? 2 : 4;
  cfg.setup_time = predis::seconds(2);
  BlockTracer tracer;
  tracer.expect_reconstruction(true);
  cfg.ctx.tracer = &tracer;
  const auto r = predis::multizone::run_propagation(cfg);

  Scenario s;
  s.name = "random_gossip";
  s.description = "FEG random-gossip block propagation (Fig. 8 shape)";
  s.stages = r.stage_latency;
  // Propagation runs until delivery settles; judge stalls well past
  // the last possible commit so a truly unreconstructed block flags.
  s.anomalies = tracer.anomalies(cfg.setup_time + predis::seconds(120));
  s.metrics_json = fold_metrics(tracer);
  s.headline = r.full_coverage_fraction * 100.0;
  s.headline_unit = "% coverage";
  s.required_stages = {"distribution"};
  return s;
}

// --- Anomaly-detector self-test ----------------------------------------
//
// Each case reconstructs the observable signature of one pre-fix bug
// and asserts the matching detector fires — and only that one.

bool count_kinds(const std::vector<TraceAnomaly>& as,
                 TraceAnomaly::Kind kind, std::size_t expect) {
  std::size_t n = 0;
  for (const TraceAnomaly& a : as) {
    if (a.kind == kind) ++n;
  }
  return n == expect;
}

bool selftest_reban_storm() {
  // Pre-fix PredisEngine::apply_ban armed one rejoin timer per
  // duplicate ConflictMsg; each stale timer's rejoin was followed by a
  // fresh ban, so one observer banned one producer over and over.
  BlockTracer t;
  for (int i = 0; i < 4; ++i) {
    t.record_ban(0, 3, predis::seconds(i));
    t.record_unban(0, 3, predis::seconds(i) + predis::milliseconds(500));
  }
  const auto as = t.anomalies(predis::seconds(10));
  return count_kinds(as, TraceAnomaly::Kind::kRebanStorm, 1) &&
         count_kinds(as, TraceAnomaly::Kind::kStalledBlock, 0) &&
         count_kinds(as, TraceAnomaly::Kind::kPullSpiral, 0);
}

bool selftest_pull_spiral() {
  // Pre-fix RandomGossipNode retried its pull against the same dead
  // digest sender forever: unbounded pulls of one block by one node.
  BlockTracer t;
  const predis::Hash32 block = predis::trace_key(7);
  for (int i = 0; i < 15; ++i) {
    t.record_pull(block, 9, predis::milliseconds(100 * i));
  }
  const auto as = t.anomalies(predis::seconds(10));
  return count_kinds(as, TraceAnomaly::Kind::kPullSpiral, 1) &&
         count_kinds(as, TraceAnomaly::Kind::kRebanStorm, 0);
}

bool selftest_stalled_block() {
  // The downstream symptom of the gossip stall: a committed block that
  // no full node ever reconstructs.
  BlockTracer t;
  const predis::Hash32 stuck = predis::trace_key(1);
  const predis::Hash32 healthy = predis::trace_key(2);
  t.record(predis::TraceStage::kBlockCommitted, stuck, 0);
  t.record(predis::TraceStage::kBlockCommitted, healthy,
           predis::milliseconds(10));
  t.record(predis::TraceStage::kBlockReconstructed, healthy,
           predis::milliseconds(400), 5);
  const auto as = t.anomalies(predis::seconds(10));
  return count_kinds(as, TraceAnomaly::Kind::kStalledBlock, 1);
}

int write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "trace_report: cannot write %s\n", path.c_str());
    return 1;
  }
  out << content;
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool strict = false;
  std::string out_dir = ".";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else if (std::strcmp(argv[i], "--out-dir") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: trace_report [--smoke] [--strict] "
                   "[--out-dir DIR]\n");
      return 2;
    }
  }

  const bool st_reban = selftest_reban_storm();
  const bool st_spiral = selftest_pull_spiral();
  const bool st_stall = selftest_stalled_block();
  std::printf("detector self-test: re-ban storm %s, pull spiral %s, "
              "stalled block %s\n",
              st_reban ? "ok" : "FAILED", st_spiral ? "ok" : "FAILED",
              st_stall ? "ok" : "FAILED");

  std::vector<Scenario> scenarios;
  scenarios.push_back(run_multizone(smoke));
  scenarios.push_back(run_baseline(predis::core::Protocol::kPbft, smoke));
  scenarios.push_back(
      run_baseline(predis::core::Protocol::kHotStuff, smoke));
  scenarios.push_back(run_gossip(smoke));

  bool schema_ok = true;
  std::size_t live_anomalies = 0;
  for (const Scenario& s : scenarios) {
    print_scenario(s);
    live_anomalies += s.anomalies.size();
    for (const std::string& want : s.required_stages) {
      if (!has_stage(s, want)) {
        std::printf("  SCHEMA HOLE: %s missing stage %s\n",
                    s.name.c_str(), want.c_str());
        schema_ok = false;
      }
    }
  }

  JsonWriter j;
  j.raw("{\n  ");
  j.kv("schema", "predis-latency/1");
  j.kv("tool", "trace_report");
  j.kv("smoke", smoke);
  j.raw("\"selftest\": {");
  j.kv("reban_storm", st_reban);
  j.kv("pull_spiral", st_spiral);
  j.kv("stalled_block", st_stall, false);
  j.raw("},\n  \"scenarios\": [\n");
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    scenario_json(j, scenarios[i], i + 1 == scenarios.size());
  }
  j.raw("  ]\n}\n");

  const int write_rc = write_file(out_dir + "/BENCH_latency.json", j.buf);

  const bool selftests_ok = st_reban && st_spiral && st_stall;
  std::printf("\nsummary: selftest %s, %zu live anomalies, schema %s\n",
              selftests_ok ? "ok" : "FAILED", live_anomalies,
              schema_ok ? "complete" : "INCOMPLETE");
  if (write_rc != 0) return write_rc;
  if (strict && (!selftests_ok || live_anomalies != 0 || !schema_ok)) {
    return 1;
  }
  return 0;
}
