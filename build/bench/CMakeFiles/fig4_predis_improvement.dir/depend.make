# Empty dependencies file for fig4_predis_improvement.
# This may be replaced when dependencies are built.
