file(REMOVE_RECURSE
  "CMakeFiles/fig4_predis_improvement.dir/fig4_predis_improvement.cpp.o"
  "CMakeFiles/fig4_predis_improvement.dir/fig4_predis_improvement.cpp.o.d"
  "fig4_predis_improvement"
  "fig4_predis_improvement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_predis_improvement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
