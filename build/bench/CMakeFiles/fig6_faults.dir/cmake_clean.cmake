file(REMOVE_RECURSE
  "CMakeFiles/fig6_faults.dir/fig6_faults.cpp.o"
  "CMakeFiles/fig6_faults.dir/fig6_faults.cpp.o.d"
  "fig6_faults"
  "fig6_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
