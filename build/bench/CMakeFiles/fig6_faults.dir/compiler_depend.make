# Empty compiler generated dependencies file for fig6_faults.
# This may be replaced when dependencies are built.
