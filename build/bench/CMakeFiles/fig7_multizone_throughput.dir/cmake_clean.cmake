file(REMOVE_RECURSE
  "CMakeFiles/fig7_multizone_throughput.dir/fig7_multizone_throughput.cpp.o"
  "CMakeFiles/fig7_multizone_throughput.dir/fig7_multizone_throughput.cpp.o.d"
  "fig7_multizone_throughput"
  "fig7_multizone_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_multizone_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
