# Empty dependencies file for fig7_multizone_throughput.
# This may be replaced when dependencies are built.
