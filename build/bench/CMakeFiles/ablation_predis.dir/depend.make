# Empty dependencies file for ablation_predis.
# This may be replaced when dependencies are built.
