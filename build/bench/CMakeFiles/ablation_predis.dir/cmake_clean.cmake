file(REMOVE_RECURSE
  "CMakeFiles/ablation_predis.dir/ablation_predis.cpp.o"
  "CMakeFiles/ablation_predis.dir/ablation_predis.cpp.o.d"
  "ablation_predis"
  "ablation_predis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_predis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
