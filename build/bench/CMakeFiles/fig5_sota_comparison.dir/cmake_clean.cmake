file(REMOVE_RECURSE
  "CMakeFiles/fig5_sota_comparison.dir/fig5_sota_comparison.cpp.o"
  "CMakeFiles/fig5_sota_comparison.dir/fig5_sota_comparison.cpp.o.d"
  "fig5_sota_comparison"
  "fig5_sota_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_sota_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
