# Empty compiler generated dependencies file for fig5_sota_comparison.
# This may be replaced when dependencies are built.
