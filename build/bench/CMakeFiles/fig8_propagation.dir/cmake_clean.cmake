file(REMOVE_RECURSE
  "CMakeFiles/fig8_propagation.dir/fig8_propagation.cpp.o"
  "CMakeFiles/fig8_propagation.dir/fig8_propagation.cpp.o.d"
  "fig8_propagation"
  "fig8_propagation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
