# Empty compiler generated dependencies file for fig8_propagation.
# This may be replaced when dependencies are built.
