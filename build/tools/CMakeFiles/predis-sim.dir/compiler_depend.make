# Empty compiler generated dependencies file for predis-sim.
# This may be replaced when dependencies are built.
