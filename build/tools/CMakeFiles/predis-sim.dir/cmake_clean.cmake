file(REMOVE_RECURSE
  "CMakeFiles/predis-sim.dir/predis_sim.cpp.o"
  "CMakeFiles/predis-sim.dir/predis_sim.cpp.o.d"
  "predis-sim"
  "predis-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predis-sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
