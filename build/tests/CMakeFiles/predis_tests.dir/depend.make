# Empty dependencies file for predis_tests.
# This may be replaced when dependencies are built.
