
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bundle/test_bundle.cpp" "tests/CMakeFiles/predis_tests.dir/bundle/test_bundle.cpp.o" "gcc" "tests/CMakeFiles/predis_tests.dir/bundle/test_bundle.cpp.o.d"
  "/root/repo/tests/bundle/test_cutting.cpp" "tests/CMakeFiles/predis_tests.dir/bundle/test_cutting.cpp.o" "gcc" "tests/CMakeFiles/predis_tests.dir/bundle/test_cutting.cpp.o.d"
  "/root/repo/tests/bundle/test_mempool.cpp" "tests/CMakeFiles/predis_tests.dir/bundle/test_mempool.cpp.o" "gcc" "tests/CMakeFiles/predis_tests.dir/bundle/test_mempool.cpp.o.d"
  "/root/repo/tests/bundle/test_mempool_properties.cpp" "tests/CMakeFiles/predis_tests.dir/bundle/test_mempool_properties.cpp.o" "gcc" "tests/CMakeFiles/predis_tests.dir/bundle/test_mempool_properties.cpp.o.d"
  "/root/repo/tests/bundle/test_predis_block.cpp" "tests/CMakeFiles/predis_tests.dir/bundle/test_predis_block.cpp.o" "gcc" "tests/CMakeFiles/predis_tests.dir/bundle/test_predis_block.cpp.o.d"
  "/root/repo/tests/bundle/test_rejoin.cpp" "tests/CMakeFiles/predis_tests.dir/bundle/test_rejoin.cpp.o" "gcc" "tests/CMakeFiles/predis_tests.dir/bundle/test_rejoin.cpp.o.d"
  "/root/repo/tests/common/test_bytes.cpp" "tests/CMakeFiles/predis_tests.dir/common/test_bytes.cpp.o" "gcc" "tests/CMakeFiles/predis_tests.dir/common/test_bytes.cpp.o.d"
  "/root/repo/tests/common/test_codec.cpp" "tests/CMakeFiles/predis_tests.dir/common/test_codec.cpp.o" "gcc" "tests/CMakeFiles/predis_tests.dir/common/test_codec.cpp.o.d"
  "/root/repo/tests/common/test_codec_fuzz.cpp" "tests/CMakeFiles/predis_tests.dir/common/test_codec_fuzz.cpp.o" "gcc" "tests/CMakeFiles/predis_tests.dir/common/test_codec_fuzz.cpp.o.d"
  "/root/repo/tests/common/test_merkle.cpp" "tests/CMakeFiles/predis_tests.dir/common/test_merkle.cpp.o" "gcc" "tests/CMakeFiles/predis_tests.dir/common/test_merkle.cpp.o.d"
  "/root/repo/tests/common/test_rng.cpp" "tests/CMakeFiles/predis_tests.dir/common/test_rng.cpp.o" "gcc" "tests/CMakeFiles/predis_tests.dir/common/test_rng.cpp.o.d"
  "/root/repo/tests/common/test_sha256.cpp" "tests/CMakeFiles/predis_tests.dir/common/test_sha256.cpp.o" "gcc" "tests/CMakeFiles/predis_tests.dir/common/test_sha256.cpp.o.d"
  "/root/repo/tests/common/test_signature.cpp" "tests/CMakeFiles/predis_tests.dir/common/test_signature.cpp.o" "gcc" "tests/CMakeFiles/predis_tests.dir/common/test_signature.cpp.o.d"
  "/root/repo/tests/common/test_stats.cpp" "tests/CMakeFiles/predis_tests.dir/common/test_stats.cpp.o" "gcc" "tests/CMakeFiles/predis_tests.dir/common/test_stats.cpp.o.d"
  "/root/repo/tests/consensus/test_censorship.cpp" "tests/CMakeFiles/predis_tests.dir/consensus/test_censorship.cpp.o" "gcc" "tests/CMakeFiles/predis_tests.dir/consensus/test_censorship.cpp.o.d"
  "/root/repo/tests/consensus/test_hotstuff.cpp" "tests/CMakeFiles/predis_tests.dir/consensus/test_hotstuff.cpp.o" "gcc" "tests/CMakeFiles/predis_tests.dir/consensus/test_hotstuff.cpp.o.d"
  "/root/repo/tests/consensus/test_hotstuff_edge.cpp" "tests/CMakeFiles/predis_tests.dir/consensus/test_hotstuff_edge.cpp.o" "gcc" "tests/CMakeFiles/predis_tests.dir/consensus/test_hotstuff_edge.cpp.o.d"
  "/root/repo/tests/consensus/test_narwhal.cpp" "tests/CMakeFiles/predis_tests.dir/consensus/test_narwhal.cpp.o" "gcc" "tests/CMakeFiles/predis_tests.dir/consensus/test_narwhal.cpp.o.d"
  "/root/repo/tests/consensus/test_partitions.cpp" "tests/CMakeFiles/predis_tests.dir/consensus/test_partitions.cpp.o" "gcc" "tests/CMakeFiles/predis_tests.dir/consensus/test_partitions.cpp.o.d"
  "/root/repo/tests/consensus/test_payloads.cpp" "tests/CMakeFiles/predis_tests.dir/consensus/test_payloads.cpp.o" "gcc" "tests/CMakeFiles/predis_tests.dir/consensus/test_payloads.cpp.o.d"
  "/root/repo/tests/consensus/test_pbft.cpp" "tests/CMakeFiles/predis_tests.dir/consensus/test_pbft.cpp.o" "gcc" "tests/CMakeFiles/predis_tests.dir/consensus/test_pbft.cpp.o.d"
  "/root/repo/tests/consensus/test_pbft_pipeline.cpp" "tests/CMakeFiles/predis_tests.dir/consensus/test_pbft_pipeline.cpp.o" "gcc" "tests/CMakeFiles/predis_tests.dir/consensus/test_pbft_pipeline.cpp.o.d"
  "/root/repo/tests/consensus/test_predis.cpp" "tests/CMakeFiles/predis_tests.dir/consensus/test_predis.cpp.o" "gcc" "tests/CMakeFiles/predis_tests.dir/consensus/test_predis.cpp.o.d"
  "/root/repo/tests/consensus/test_rejoin_flow.cpp" "tests/CMakeFiles/predis_tests.dir/consensus/test_rejoin_flow.cpp.o" "gcc" "tests/CMakeFiles/predis_tests.dir/consensus/test_rejoin_flow.cpp.o.d"
  "/root/repo/tests/consensus/test_state_transfer.cpp" "tests/CMakeFiles/predis_tests.dir/consensus/test_state_transfer.cpp.o" "gcc" "tests/CMakeFiles/predis_tests.dir/consensus/test_state_transfer.cpp.o.d"
  "/root/repo/tests/core/test_experiment.cpp" "tests/CMakeFiles/predis_tests.dir/core/test_experiment.cpp.o" "gcc" "tests/CMakeFiles/predis_tests.dir/core/test_experiment.cpp.o.d"
  "/root/repo/tests/core/test_ledger.cpp" "tests/CMakeFiles/predis_tests.dir/core/test_ledger.cpp.o" "gcc" "tests/CMakeFiles/predis_tests.dir/core/test_ledger.cpp.o.d"
  "/root/repo/tests/erasure/test_gf256.cpp" "tests/CMakeFiles/predis_tests.dir/erasure/test_gf256.cpp.o" "gcc" "tests/CMakeFiles/predis_tests.dir/erasure/test_gf256.cpp.o.d"
  "/root/repo/tests/erasure/test_reed_solomon.cpp" "tests/CMakeFiles/predis_tests.dir/erasure/test_reed_solomon.cpp.o" "gcc" "tests/CMakeFiles/predis_tests.dir/erasure/test_reed_solomon.cpp.o.d"
  "/root/repo/tests/erasure/test_stripe_codec.cpp" "tests/CMakeFiles/predis_tests.dir/erasure/test_stripe_codec.cpp.o" "gcc" "tests/CMakeFiles/predis_tests.dir/erasure/test_stripe_codec.cpp.o.d"
  "/root/repo/tests/multizone/test_experiments.cpp" "tests/CMakeFiles/predis_tests.dir/multizone/test_experiments.cpp.o" "gcc" "tests/CMakeFiles/predis_tests.dir/multizone/test_experiments.cpp.o.d"
  "/root/repo/tests/multizone/test_full_node.cpp" "tests/CMakeFiles/predis_tests.dir/multizone/test_full_node.cpp.o" "gcc" "tests/CMakeFiles/predis_tests.dir/multizone/test_full_node.cpp.o.d"
  "/root/repo/tests/multizone/test_robustness.cpp" "tests/CMakeFiles/predis_tests.dir/multizone/test_robustness.cpp.o" "gcc" "tests/CMakeFiles/predis_tests.dir/multizone/test_robustness.cpp.o.d"
  "/root/repo/tests/sim/test_environments.cpp" "tests/CMakeFiles/predis_tests.dir/sim/test_environments.cpp.o" "gcc" "tests/CMakeFiles/predis_tests.dir/sim/test_environments.cpp.o.d"
  "/root/repo/tests/sim/test_network.cpp" "tests/CMakeFiles/predis_tests.dir/sim/test_network.cpp.o" "gcc" "tests/CMakeFiles/predis_tests.dir/sim/test_network.cpp.o.d"
  "/root/repo/tests/sim/test_network_properties.cpp" "tests/CMakeFiles/predis_tests.dir/sim/test_network_properties.cpp.o" "gcc" "tests/CMakeFiles/predis_tests.dir/sim/test_network_properties.cpp.o.d"
  "/root/repo/tests/sim/test_simulator.cpp" "tests/CMakeFiles/predis_tests.dir/sim/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/predis_tests.dir/sim/test_simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/predis_core.dir/DependInfo.cmake"
  "/root/repo/build/src/multizone/CMakeFiles/predis_multizone.dir/DependInfo.cmake"
  "/root/repo/build/src/consensus/CMakeFiles/predis_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/erasure/CMakeFiles/predis_erasure.dir/DependInfo.cmake"
  "/root/repo/build/src/bundle/CMakeFiles/predis_bundle.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/predis_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/predis_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
