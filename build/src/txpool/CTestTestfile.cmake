# CMake generated Testfile for 
# Source directory: /root/repo/src/txpool
# Build directory: /root/repo/build/src/txpool
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
