file(REMOVE_RECURSE
  "libpredis_core.a"
)
