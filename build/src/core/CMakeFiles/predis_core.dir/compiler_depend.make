# Empty compiler generated dependencies file for predis_core.
# This may be replaced when dependencies are built.
