file(REMOVE_RECURSE
  "CMakeFiles/predis_core.dir/experiment.cpp.o"
  "CMakeFiles/predis_core.dir/experiment.cpp.o.d"
  "CMakeFiles/predis_core.dir/ledger.cpp.o"
  "CMakeFiles/predis_core.dir/ledger.cpp.o.d"
  "libpredis_core.a"
  "libpredis_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predis_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
