file(REMOVE_RECURSE
  "CMakeFiles/predis_bundle.dir/bundle.cpp.o"
  "CMakeFiles/predis_bundle.dir/bundle.cpp.o.d"
  "CMakeFiles/predis_bundle.dir/mempool.cpp.o"
  "CMakeFiles/predis_bundle.dir/mempool.cpp.o.d"
  "CMakeFiles/predis_bundle.dir/predis_block.cpp.o"
  "CMakeFiles/predis_bundle.dir/predis_block.cpp.o.d"
  "libpredis_bundle.a"
  "libpredis_bundle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predis_bundle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
