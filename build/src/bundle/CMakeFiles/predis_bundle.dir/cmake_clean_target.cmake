file(REMOVE_RECURSE
  "libpredis_bundle.a"
)
