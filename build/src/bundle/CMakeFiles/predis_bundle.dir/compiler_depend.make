# Empty compiler generated dependencies file for predis_bundle.
# This may be replaced when dependencies are built.
