
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bundle/bundle.cpp" "src/bundle/CMakeFiles/predis_bundle.dir/bundle.cpp.o" "gcc" "src/bundle/CMakeFiles/predis_bundle.dir/bundle.cpp.o.d"
  "/root/repo/src/bundle/mempool.cpp" "src/bundle/CMakeFiles/predis_bundle.dir/mempool.cpp.o" "gcc" "src/bundle/CMakeFiles/predis_bundle.dir/mempool.cpp.o.d"
  "/root/repo/src/bundle/predis_block.cpp" "src/bundle/CMakeFiles/predis_bundle.dir/predis_block.cpp.o" "gcc" "src/bundle/CMakeFiles/predis_bundle.dir/predis_block.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/predis_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/predis_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
