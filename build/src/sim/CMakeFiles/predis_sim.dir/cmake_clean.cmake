file(REMOVE_RECURSE
  "CMakeFiles/predis_sim.dir/network.cpp.o"
  "CMakeFiles/predis_sim.dir/network.cpp.o.d"
  "CMakeFiles/predis_sim.dir/simulator.cpp.o"
  "CMakeFiles/predis_sim.dir/simulator.cpp.o.d"
  "libpredis_sim.a"
  "libpredis_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predis_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
