# Empty compiler generated dependencies file for predis_sim.
# This may be replaced when dependencies are built.
