file(REMOVE_RECURSE
  "libpredis_sim.a"
)
