file(REMOVE_RECURSE
  "libpredis_erasure.a"
)
