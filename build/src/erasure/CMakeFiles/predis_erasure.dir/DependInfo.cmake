
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/erasure/gf256.cpp" "src/erasure/CMakeFiles/predis_erasure.dir/gf256.cpp.o" "gcc" "src/erasure/CMakeFiles/predis_erasure.dir/gf256.cpp.o.d"
  "/root/repo/src/erasure/reed_solomon.cpp" "src/erasure/CMakeFiles/predis_erasure.dir/reed_solomon.cpp.o" "gcc" "src/erasure/CMakeFiles/predis_erasure.dir/reed_solomon.cpp.o.d"
  "/root/repo/src/erasure/stripe_codec.cpp" "src/erasure/CMakeFiles/predis_erasure.dir/stripe_codec.cpp.o" "gcc" "src/erasure/CMakeFiles/predis_erasure.dir/stripe_codec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/predis_common.dir/DependInfo.cmake"
  "/root/repo/build/src/bundle/CMakeFiles/predis_bundle.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/predis_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
