file(REMOVE_RECURSE
  "CMakeFiles/predis_erasure.dir/gf256.cpp.o"
  "CMakeFiles/predis_erasure.dir/gf256.cpp.o.d"
  "CMakeFiles/predis_erasure.dir/reed_solomon.cpp.o"
  "CMakeFiles/predis_erasure.dir/reed_solomon.cpp.o.d"
  "CMakeFiles/predis_erasure.dir/stripe_codec.cpp.o"
  "CMakeFiles/predis_erasure.dir/stripe_codec.cpp.o.d"
  "libpredis_erasure.a"
  "libpredis_erasure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predis_erasure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
