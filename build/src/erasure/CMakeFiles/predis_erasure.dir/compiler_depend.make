# Empty compiler generated dependencies file for predis_erasure.
# This may be replaced when dependencies are built.
