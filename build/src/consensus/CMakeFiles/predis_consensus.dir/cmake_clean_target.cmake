file(REMOVE_RECURSE
  "libpredis_consensus.a"
)
