# Empty compiler generated dependencies file for predis_consensus.
# This may be replaced when dependencies are built.
