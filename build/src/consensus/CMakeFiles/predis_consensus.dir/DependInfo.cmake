
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/consensus/hotstuff/hotstuff_core.cpp" "src/consensus/CMakeFiles/predis_consensus.dir/hotstuff/hotstuff_core.cpp.o" "gcc" "src/consensus/CMakeFiles/predis_consensus.dir/hotstuff/hotstuff_core.cpp.o.d"
  "/root/repo/src/consensus/narwhal/shared_mempool.cpp" "src/consensus/CMakeFiles/predis_consensus.dir/narwhal/shared_mempool.cpp.o" "gcc" "src/consensus/CMakeFiles/predis_consensus.dir/narwhal/shared_mempool.cpp.o.d"
  "/root/repo/src/consensus/pbft/pbft_core.cpp" "src/consensus/CMakeFiles/predis_consensus.dir/pbft/pbft_core.cpp.o" "gcc" "src/consensus/CMakeFiles/predis_consensus.dir/pbft/pbft_core.cpp.o.d"
  "/root/repo/src/consensus/predis/predis_engine.cpp" "src/consensus/CMakeFiles/predis_consensus.dir/predis/predis_engine.cpp.o" "gcc" "src/consensus/CMakeFiles/predis_consensus.dir/predis/predis_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/predis_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/predis_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/bundle/CMakeFiles/predis_bundle.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
