file(REMOVE_RECURSE
  "CMakeFiles/predis_consensus.dir/hotstuff/hotstuff_core.cpp.o"
  "CMakeFiles/predis_consensus.dir/hotstuff/hotstuff_core.cpp.o.d"
  "CMakeFiles/predis_consensus.dir/narwhal/shared_mempool.cpp.o"
  "CMakeFiles/predis_consensus.dir/narwhal/shared_mempool.cpp.o.d"
  "CMakeFiles/predis_consensus.dir/pbft/pbft_core.cpp.o"
  "CMakeFiles/predis_consensus.dir/pbft/pbft_core.cpp.o.d"
  "CMakeFiles/predis_consensus.dir/predis/predis_engine.cpp.o"
  "CMakeFiles/predis_consensus.dir/predis/predis_engine.cpp.o.d"
  "libpredis_consensus.a"
  "libpredis_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predis_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
