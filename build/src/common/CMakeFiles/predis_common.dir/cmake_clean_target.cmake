file(REMOVE_RECURSE
  "libpredis_common.a"
)
