# Empty compiler generated dependencies file for predis_common.
# This may be replaced when dependencies are built.
