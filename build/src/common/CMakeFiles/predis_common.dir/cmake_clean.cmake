file(REMOVE_RECURSE
  "CMakeFiles/predis_common.dir/bytes.cpp.o"
  "CMakeFiles/predis_common.dir/bytes.cpp.o.d"
  "CMakeFiles/predis_common.dir/log.cpp.o"
  "CMakeFiles/predis_common.dir/log.cpp.o.d"
  "CMakeFiles/predis_common.dir/merkle.cpp.o"
  "CMakeFiles/predis_common.dir/merkle.cpp.o.d"
  "CMakeFiles/predis_common.dir/rng.cpp.o"
  "CMakeFiles/predis_common.dir/rng.cpp.o.d"
  "CMakeFiles/predis_common.dir/sha256.cpp.o"
  "CMakeFiles/predis_common.dir/sha256.cpp.o.d"
  "CMakeFiles/predis_common.dir/signature.cpp.o"
  "CMakeFiles/predis_common.dir/signature.cpp.o.d"
  "libpredis_common.a"
  "libpredis_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predis_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
