file(REMOVE_RECURSE
  "CMakeFiles/predis_multizone.dir/experiments.cpp.o"
  "CMakeFiles/predis_multizone.dir/experiments.cpp.o.d"
  "CMakeFiles/predis_multizone.dir/full_node.cpp.o"
  "CMakeFiles/predis_multizone.dir/full_node.cpp.o.d"
  "libpredis_multizone.a"
  "libpredis_multizone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predis_multizone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
