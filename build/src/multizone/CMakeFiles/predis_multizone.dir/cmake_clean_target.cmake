file(REMOVE_RECURSE
  "libpredis_multizone.a"
)
