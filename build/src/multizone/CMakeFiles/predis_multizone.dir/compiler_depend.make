# Empty compiler generated dependencies file for predis_multizone.
# This may be replaced when dependencies are built.
