
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/block_propagation.cpp" "examples/CMakeFiles/block_propagation.dir/block_propagation.cpp.o" "gcc" "examples/CMakeFiles/block_propagation.dir/block_propagation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/predis_core.dir/DependInfo.cmake"
  "/root/repo/build/src/multizone/CMakeFiles/predis_multizone.dir/DependInfo.cmake"
  "/root/repo/build/src/consensus/CMakeFiles/predis_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/erasure/CMakeFiles/predis_erasure.dir/DependInfo.cmake"
  "/root/repo/build/src/bundle/CMakeFiles/predis_bundle.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/predis_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/predis_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
