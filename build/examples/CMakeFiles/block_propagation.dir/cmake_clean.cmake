file(REMOVE_RECURSE
  "CMakeFiles/block_propagation.dir/block_propagation.cpp.o"
  "CMakeFiles/block_propagation.dir/block_propagation.cpp.o.d"
  "block_propagation"
  "block_propagation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
