# Empty dependencies file for block_propagation.
# This may be replaced when dependencies are built.
