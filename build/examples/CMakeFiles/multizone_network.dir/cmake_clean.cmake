file(REMOVE_RECURSE
  "CMakeFiles/multizone_network.dir/multizone_network.cpp.o"
  "CMakeFiles/multizone_network.dir/multizone_network.cpp.o.d"
  "multizone_network"
  "multizone_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multizone_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
