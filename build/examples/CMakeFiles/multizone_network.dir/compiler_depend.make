# Empty compiler generated dependencies file for multizone_network.
# This may be replaced when dependencies are built.
