file(REMOVE_RECURSE
  "CMakeFiles/byzantine_faults.dir/byzantine_faults.cpp.o"
  "CMakeFiles/byzantine_faults.dir/byzantine_faults.cpp.o.d"
  "byzantine_faults"
  "byzantine_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/byzantine_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
