# Empty dependencies file for byzantine_faults.
# This may be replaced when dependencies are built.
