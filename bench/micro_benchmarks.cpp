// Micro-benchmarks (google-benchmark) for the framework's hot paths:
// SHA-256, Merkle trees, the simulated signatures, Reed-Solomon
// encode/decode (§V-B reports "several microseconds" per bundle),
// bundle construction and Predis block build/verify.
#include <benchmark/benchmark.h>

#include "bundle/predis_block.hpp"
#include "common/rng.hpp"
#include "erasure/reed_solomon.hpp"

using namespace predis;

namespace {

Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

void BM_Sha256(benchmark::State& state) {
  const Bytes data = random_bytes(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(25'600);

void BM_MerkleRoot(benchmark::State& state) {
  std::vector<Hash32> leaves;
  for (int i = 0; i < state.range(0); ++i) {
    leaves.push_back(Sha256::hash(as_bytes("leaf" + std::to_string(i))));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(MerkleTree::root_of(leaves));
  }
}
BENCHMARK(BM_MerkleRoot)->Arg(50)->Arg(800)->Arg(4096);

void BM_SignVerify(benchmark::State& state) {
  const KeyPair key = KeyPair::from_seed(42);
  const Bytes msg = random_bytes(256, 2);
  const Signature sig = key.sign(msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify(key.public_key(), msg, sig));
  }
}
BENCHMARK(BM_SignVerify);

// The GF(2^8) row kernel underneath every Reed-Solomon byte: one fused
// dst ^= coeff * src pass. Arg: row length in bytes.
void BM_GfMulRowAdd(benchmark::State& state) {
  const auto len = static_cast<std::size_t>(state.range(0));
  const Bytes src = random_bytes(len, 17);
  Bytes dst = random_bytes(len, 18);
  for (auto _ : state) {
    erasure::GF256::mul_row_add(dst.data(), src.data(), 0x57, len);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(len));
}
BENCHMARK(BM_GfMulRowAdd)->Arg(1024)->Arg(9362)->Arg(65536);

void BM_GfMulRowAddPortable(benchmark::State& state) {
  const auto len = static_cast<std::size_t>(state.range(0));
  const Bytes src = random_bytes(len, 17);
  Bytes dst = random_bytes(len, 18);
  for (auto _ : state) {
    erasure::GF256::mul_row_add_portable(dst.data(), src.data(), 0x57, len);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(len));
}
BENCHMARK(BM_GfMulRowAddPortable)->Arg(1024)->Arg(9362)->Arg(65536);

// The paper's §V-B observation: encoding/decoding a 50-tx bundle costs
// "several microseconds". Args: {k, n, payload bytes}. 25'600 = 50 txs
// x 512 B (the paper's bundle); 65'536 = the BENCH_erasure.json
// reference point at (7, 10).
void BM_ReedSolomonEncode(benchmark::State& state) {
  const erasure::ReedSolomon rs(static_cast<std::size_t>(state.range(0)),
                                static_cast<std::size_t>(state.range(1)));
  const auto payload_size = static_cast<std::size_t>(state.range(2));
  const Bytes bundle = random_bytes(payload_size, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.encode(bundle));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(payload_size));
}
BENCHMARK(BM_ReedSolomonEncode)
    ->Args({3, 4, 25'600})
    ->Args({6, 8, 25'600})
    ->Args({11, 16, 25'600})
    ->Args({7, 10, 16'384})
    ->Args({7, 10, 65'536})
    ->Args({7, 10, 262'144});

// Allocation-free variant: shard buffers provided by the caller.
void BM_ReedSolomonEncodeInto(benchmark::State& state) {
  const erasure::ReedSolomon rs(static_cast<std::size_t>(state.range(0)),
                                static_cast<std::size_t>(state.range(1)));
  const auto payload_size = static_cast<std::size_t>(state.range(2));
  const Bytes bundle = random_bytes(payload_size, 3);
  std::vector<Bytes> shards(rs.total_shards(),
                            Bytes(rs.shard_size(payload_size)));
  std::vector<MutBytesView> views(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    views[i] = MutBytesView(shards[i]);
  }
  for (auto _ : state) {
    rs.encode_into(bundle, views);
    benchmark::DoNotOptimize(shards.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(payload_size));
}
BENCHMARK(BM_ReedSolomonEncodeInto)
    ->Args({3, 4, 25'600})
    ->Args({7, 10, 65'536})
    ->Args({11, 16, 25'600});

void BM_ReedSolomonDecodeWithLoss(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  const auto payload_size = static_cast<std::size_t>(state.range(2));
  const erasure::ReedSolomon rs(k, n);
  const Bytes bundle = random_bytes(payload_size, 4);
  const auto shards = rs.encode(bundle);
  std::vector<std::optional<Bytes>> input(shards.begin(), shards.end());
  for (std::size_t i = 0; i < n - k; ++i) input[i].reset();  // worst case
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.decode(input));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(payload_size));
}
BENCHMARK(BM_ReedSolomonDecodeWithLoss)
    ->Args({3, 4, 25'600})
    ->Args({6, 8, 25'600})
    ->Args({11, 16, 25'600})
    ->Args({7, 10, 16'384})
    ->Args({7, 10, 65'536})
    ->Args({7, 10, 262'144});

std::vector<Transaction> make_txs(std::size_t count) {
  std::vector<Transaction> txs(count);
  for (std::size_t i = 0; i < count; ++i) {
    txs[i].client = 1;
    txs[i].seq = i;
    txs[i].payload_seed = i * 0x9e37;
  }
  return txs;
}

void BM_BundleBuild(benchmark::State& state) {
  const KeyPair key = KeyPair::from_seed(7);
  const auto txs = make_txs(static_cast<std::size_t>(state.range(0)));
  BundleHeight h = 1;
  Hash32 parent = kZeroHash;
  for (auto _ : state) {
    Bundle b = make_bundle(0, h++, parent, {h, 0, 0, 0}, txs, key);
    parent = b.header.hash();
    benchmark::DoNotOptimize(b);
  }
}
BENCHMARK(BM_BundleBuild)->Arg(50)->Arg(100);

struct BlockFixture {
  static constexpr std::size_t kN = 4;
  Mempool mempool{kN, keys()};
  KeyPair leader = KeyPair::from_seed(0);

  static std::vector<PublicKey> keys() {
    std::vector<PublicKey> out;
    for (std::size_t i = 0; i < kN; ++i) {
      out.push_back(KeyPair::from_seed(i).public_key());
    }
    return out;
  }

  BlockFixture() {
    for (std::size_t p = 0; p < kN; ++p) {
      Hash32 parent = kZeroHash;
      for (BundleHeight h = 1; h <= 8; ++h) {
        Bundle b = make_bundle(static_cast<NodeId>(p), h, parent,
                               std::vector<BundleHeight>(kN, 8),
                               make_txs(50), KeyPair::from_seed(p));
        parent = b.header.hash();
        mempool.add(b);
      }
    }
  }
};

void BM_PredisBlockBuild(benchmark::State& state) {
  BlockFixture fx;
  const std::vector<BundleHeight> prev(BlockFixture::kN, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_predis_block(fx.mempool, 0, 1, 1, 0,
                                                kZeroHash, prev, fx.leader));
  }
}
BENCHMARK(BM_PredisBlockBuild);

void BM_PredisBlockVerify(benchmark::State& state) {
  BlockFixture fx;
  const std::vector<BundleHeight> prev(BlockFixture::kN, 0);
  const PredisBlock block = build_predis_block(fx.mempool, 0, 1, 1, 0,
                                               kZeroHash, prev, fx.leader);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        verify_predis_block(fx.mempool, block, fx.leader.public_key()));
  }
}
BENCHMARK(BM_PredisBlockVerify);

}  // namespace

BENCHMARK_MAIN();
