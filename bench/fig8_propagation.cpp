// Fig. 8 — block propagation latency to X% of 100 full nodes (LAN,
// 8 consensus nodes): star vs random(FEG, fanout 4, 8 peers) vs
// Multi-Zone with 3 and 12 zones, block sizes 1-40 MB.
//
// Reproduction target: star and random latencies grow ~linearly with
// block size (random worst at large blocks); Multi-Zone stays nearly
// flat because bundles were pre-distributed as stripes, reaching ~50%
// of star's latency (and less of random's) beyond the ~5 MB crossover;
// more zones shorten Multi-Zone's latency further.
#include <cstdio>

#include "multizone/experiments.hpp"

using namespace predis;
using namespace predis::multizone;

namespace {

void run_row(const char* label, Topology topo, std::size_t zones,
             std::size_t block_mb) {
  PropagationConfig cfg;
  cfg.topology = topo;
  cfg.n_consensus = 8;
  cfg.f = 2;
  cfg.n_full = 100;
  cfg.n_zones = zones;
  cfg.peers = 8;    // typical random-network connection count
  cfg.fanout = 4;   // FEG push fanout (paper setting)
  cfg.max_subscribers = 24;  // equal bandwidth overhead to random topo
  cfg.block_bytes = block_mb << 20;
  cfg.bundle_bytes = 256 << 10;
  cfg.n_blocks = 3;

  const PropagationResult r = run_propagation(cfg);
  std::printf("%-14s block=%2zuMB ", label, block_mb);
  for (double frac : {0.50, 0.90, 1.00}) {
    const auto it = r.latency_ms_at_fraction.find(frac);
    if (it != r.latency_ms_at_fraction.end()) {
      std::printf(" %3.0f%%:%8.0fms", frac * 100, it->second);
    } else {
      std::printf(" %3.0f%%:     n/a", frac * 100);
    }
  }
  std::printf("  coverage=%.2f\n", r.full_coverage_fraction);
}

}  // namespace

int main() {
  std::puts(
      "=== Fig 8: block propagation latency, 8 consensus + 100 full nodes "
      "(LAN) ===");
  for (std::size_t mb : {1u, 5u, 10u, 20u, 40u}) {
    run_row("star", Topology::kStar, 1, mb);
    run_row("random(FEG)", Topology::kRandom, 1, mb);
    run_row("multizone-3", Topology::kMultiZone, 3, mb);
    run_row("multizone-12", Topology::kMultiZone, 12, mb);
    std::puts("");
  }
  std::puts(
      "(paper: star/random grow with block size; Multi-Zone stays flat — "
      "~50% of star's and ~18%\n of random's latency at 40 MB; 12 zones "
      "faster than 3)");
  return 0;
}
