// Fig. 5 — Predis vs Narwhal vs Stratus (shared-mempool SOTA), WAN and
// LAN throughput-latency sweeps, plus the §V-A proposal-size comparison
// (Predis block <= 2.5 KB at 50 k transactions and n_c = 80, versus
// ~30 KB id+certificate proposals).
//
// Reproduction target: Predis saturates highest and its latency is the
// lowest of the three (no availability certificates); Narwhal (n_c - f
// acks) sits above Stratus (f + 1 acks) in latency.
#include <cstdio>

#include "bundle/predis_block.hpp"
#include "consensus/narwhal/shared_mempool.hpp"
#include "core/experiment.hpp"

using namespace predis;
using namespace predis::core;

namespace {

void sweep(const char* env, bool wan, Protocol p, const char* label,
           const std::vector<double>& loads) {
  for (double load : loads) {
    ClusterConfig cfg;
    cfg.protocol = p;
    cfg.n_consensus = 4;
    cfg.f = 1;
    cfg.wan = wan;
    cfg.offered_load_tps = load;
    cfg.n_clients = 8;
    cfg.bundle_size = 50;           // one worker, 50 txs per microblock
    cfg.microblock_id_cap = 1000;   // Narwhal/Stratus default
    cfg.duration = seconds(12);
    cfg.warmup = seconds(4);
    const ClusterResult r = run_cluster(cfg);
    std::printf("%-4s %-8s offered=%7.0f tput=%7.0f lat_ms=%7.1f p99=%7.1f%s\n",
                env, label, load, r.throughput_tps, r.avg_latency_ms,
                r.p99_latency_ms, r.consistent ? "" : "  !!INCONSISTENT");
  }
}

/// §V-A: proposal wire sizes as the transaction volume grows.
void proposal_size_table() {
  std::puts("\n=== Proposal size vs transaction volume (n_c = 80) ===");
  std::puts("txs_in_proposal  predis_block_B  idlist_narwhal_B  idlist_stratus_B");
  const std::size_t n_c = 80;
  const std::size_t f = 26;
  for (std::size_t txs : {2'500u, 10'000u, 25'000u, 50'000u}) {
    // A Predis block always carries at most n_c header hashes.
    PredisBlock block;
    block.prev_heights.assign(n_c, 0);
    block.cut_heights.assign(n_c, txs / 50 / n_c + 1);
    block.header_hashes.assign(n_c, kZeroHash);
    // Id-list proposals carry one (id + certificate) per 50-tx microblock.
    const std::size_t microblocks = txs / 50;
    consensus::narwhal::IdListPayload narwhal(
        std::vector<consensus::narwhal::MicroblockRef>(microblocks),
        n_c - f);
    consensus::narwhal::IdListPayload stratus(
        std::vector<consensus::narwhal::MicroblockRef>(microblocks), f + 1);
    std::printf("%15zu  %14zu  %16zu  %16zu\n", txs, block.wire_size(),
                narwhal.wire_size(), stratus.wire_size());
  }
  std::puts("(paper: Predis block <= 2.5 KB at 50k txs; counterparts ~30 KB per 1000 ids)");
}

}  // namespace

int main() {
  const std::vector<double> loads = {6000, 12000, 18000, 24000};

  std::puts("=== Fig 5 (top): WAN throughput-latency, n_c = 4 ===");
  sweep("WAN", true, Protocol::kPredisHotStuff, "Predis", loads);
  sweep("WAN", true, Protocol::kNarwhal, "Narwhal", loads);
  sweep("WAN", true, Protocol::kStratus, "Stratus", loads);

  std::puts("\n=== Fig 5 (bottom): LAN throughput-latency, n_c = 4 ===");
  sweep("LAN", false, Protocol::kPredisHotStuff, "Predis", loads);
  sweep("LAN", false, Protocol::kNarwhal, "Narwhal", loads);
  sweep("LAN", false, Protocol::kStratus, "Stratus", loads);

  proposal_size_table();
  return 0;
}
