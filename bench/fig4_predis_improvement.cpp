// Fig. 4 — Predis's improvement of PBFT and HotStuff (WAN).
//
//  (a) throughput-latency of PBFT vs P-PBFT with bundle sizes 25/50/100
//      and batch sizes 400/800, n_c = 4;
//  (b) the same for HotStuff vs P-HS;
//  (c) throughput-latency of PBFT vs P-PBFT for n_c = 4, 8, 16;
//  (d) the same for HotStuff vs P-HS.
//
// Each curve is a sweep of offered load; rows are
//   <protocol> <variant> <offered tx/s> <throughput tx/s> <avg latency ms>
// The paper's reproduction target is the *shape*: Predis sustains ~3-8x
// the baselines' saturation throughput, degrading slowly with n_c.
#include <cstdio>

#include "core/experiment.hpp"

using namespace predis;
using namespace predis::core;

namespace {

ClusterResult run(Protocol p, std::size_t n, double load,
                  std::size_t batch, std::size_t bundle) {
  ClusterConfig cfg;
  cfg.protocol = p;
  cfg.n_consensus = n;
  cfg.f = (n - 1) / 3;
  cfg.wan = true;
  cfg.offered_load_tps = load;
  cfg.n_clients = std::max<std::size_t>(8, n);
  cfg.batch_size = batch;
  cfg.bundle_size = bundle;
  cfg.duration = seconds(12);
  cfg.warmup = seconds(4);
  return run_cluster(cfg);
}

void sweep(const char* label, Protocol p, std::size_t n, std::size_t batch,
           std::size_t bundle, const std::vector<double>& loads) {
  for (double load : loads) {
    const ClusterResult r = run(p, n, load, batch, bundle);
    std::printf("%-24s n=%-2zu offered=%7.0f tput=%7.0f lat_ms=%7.1f%s\n",
                label, n, load, r.throughput_tps, r.avg_latency_ms,
                r.consistent ? "" : "  !!INCONSISTENT");
  }
}

}  // namespace

int main() {
  const std::vector<double> light = {1000, 2000, 4000, 6000, 8000, 12000};
  const std::vector<double> heavy = {2000, 6000, 12000, 18000, 24000};

  std::puts("=== Fig 4(a): PBFT vs P-PBFT, parameter variants (n_c=4, WAN) ===");
  sweep("PBFT batch=400", Protocol::kPbft, 4, 400, 50, light);
  sweep("PBFT batch=800", Protocol::kPbft, 4, 800, 50, light);
  sweep("P-PBFT bundle=25", Protocol::kPredisPbft, 4, 800, 25, heavy);
  sweep("P-PBFT bundle=50", Protocol::kPredisPbft, 4, 800, 50, heavy);
  sweep("P-PBFT bundle=100", Protocol::kPredisPbft, 4, 800, 100, heavy);

  std::puts("\n=== Fig 4(b): HotStuff vs P-HS, parameter variants (n_c=4, WAN) ===");
  sweep("HotStuff batch=400", Protocol::kHotStuff, 4, 400, 50, light);
  sweep("HotStuff batch=800", Protocol::kHotStuff, 4, 800, 50, light);
  sweep("P-HS bundle=25", Protocol::kPredisHotStuff, 4, 800, 25, heavy);
  sweep("P-HS bundle=50", Protocol::kPredisHotStuff, 4, 800, 50, heavy);
  sweep("P-HS bundle=100", Protocol::kPredisHotStuff, 4, 800, 100, heavy);

  std::puts("\n=== Fig 4(c): PBFT vs P-PBFT across n_c (bundle 50, batch 800) ===");
  for (std::size_t n : {4, 8, 16}) {
    sweep("PBFT", Protocol::kPbft, n, 800, 50, light);
    sweep("P-PBFT", Protocol::kPredisPbft, n, 800, 50, heavy);
  }

  std::puts("\n=== Fig 4(d): HotStuff vs P-HS across n_c (bundle 50, batch 800) ===");
  for (std::size_t n : {4, 8, 16}) {
    sweep("HotStuff", Protocol::kHotStuff, n, 800, 50, light);
    sweep("P-HS", Protocol::kPredisHotStuff, n, 800, 50, heavy);
  }
  return 0;
}
