// Fig. 6 — Predis under faults, 8 consensus nodes (P-PBFT, WAN):
//   normal    — all nodes honest;
//   case 1    — f' malicious nodes neither produce bundles nor vote;
//   case 2    — f' malicious nodes refuse to vote and send each bundle
//               to only n_c − f − 1 random peers (missing-bundle path).
//
// Reproduction target: case-1 throughput ~ (8 − f')/8 of normal; case 2
// sits between case 1 and normal but with higher latency (one extra
// round trip to fetch withheld bundles).
#include <cstdio>

#include "core/experiment.hpp"

using namespace predis;
using namespace predis::core;

namespace {

ClusterResult run(std::size_t n_faulty,
                  consensus::predis::FaultMode mode, double load) {
  ClusterConfig cfg;
  cfg.protocol = Protocol::kPredisPbft;
  cfg.n_consensus = 8;
  cfg.f = 2;
  cfg.wan = true;
  cfg.offered_load_tps = load;
  cfg.n_clients = 8;
  cfg.duration = seconds(14);
  cfg.warmup = seconds(5);
  cfg.n_faulty = n_faulty;
  cfg.fault_mode = mode;
  return run_cluster(cfg);
}

}  // namespace

int main() {
  using consensus::predis::FaultMode;
  const double load = 12'000;

  std::puts("=== Fig 6: P-PBFT under faults (8 nodes, WAN, 12k tx/s offered) ===");
  std::puts("scenario        faulty  tput(tx/s)  vs_normal  lat_ms");

  const ClusterResult normal = run(0, FaultMode::kNone, load);
  std::printf("%-15s %6d  %10.0f  %9s  %6.1f\n", "normal", 0,
              normal.throughput_tps, "1.00", normal.avg_latency_ms);

  for (std::size_t f_bad : {1u, 2u}) {
    const ClusterResult case1 = run(f_bad, FaultMode::kSilent, load);
    std::printf("%-15s %6zu  %10.0f  %9.2f  %6.1f\n", "case1-silent",
                f_bad, case1.throughput_tps,
                case1.throughput_tps / normal.throughput_tps,
                case1.avg_latency_ms);

    const ClusterResult case2 =
        run(f_bad, FaultMode::kPartialDissemination, load);
    std::printf("%-15s %6zu  %10.0f  %9.2f  %6.1f\n", "case2-withhold",
                f_bad, case2.throughput_tps,
                case2.throughput_tps / normal.throughput_tps,
                case2.avg_latency_ms);
  }
  std::printf("\n(paper: case-1 tput ~ (8-f)/8 of normal = %.2f at f=1, %.2f at f=2;\n"
              " case 2 above case 1 but below normal, with extra fetch latency)\n",
              7.0 / 8.0, 6.0 / 8.0);
  return 0;
}
