// Ablations of Predis's design choices (DESIGN.md §5):
//
//  1. Cutting-rule quorum — the paper cuts at the height reached by the
//     fastest n_c − f nodes. Alternatives: wait for *every* node
//     (f_cut = 0, conservative) or cut at the leader's own knowledge
//     (f_cut = n−1, optimistic — replicas must fetch missing bundles
//     before voting). The paper's rule should dominate on latency
//     without sacrificing throughput.
//
//  2. Bundle size and production interval — the paper's Fig. 4(a)
//     explores 25/50/100-tx bundles; we add the production-interval
//     dimension (continuous-production cadence).
#include <cstdio>

#include "core/experiment.hpp"

using namespace predis;
using namespace predis::core;

namespace {

ClusterResult run(std::size_t cut_f, std::size_t bundle, SimTime interval,
                  double load) {
  ClusterConfig cfg;
  cfg.protocol = Protocol::kPredisPbft;
  cfg.n_consensus = 4;
  cfg.f = 1;
  cfg.wan = true;
  cfg.offered_load_tps = load;
  cfg.n_clients = 8;
  cfg.bundle_size = bundle;
  cfg.bundle_interval = interval;
  cfg.cut_f_override = cut_f;
  cfg.duration = seconds(12);
  cfg.warmup = seconds(4);
  return run_cluster(cfg);
}

constexpr std::size_t kDefault = static_cast<std::size_t>(-1);

}  // namespace

int main() {
  const double load = 10'000;

  std::puts("=== Ablation 1: cutting-rule quorum (P-PBFT, n_c=4, WAN, 10k tx/s) ===");
  struct Variant {
    const char* name;
    std::size_t cut_f;
  };
  for (const Variant v : {Variant{"paper (n-f fastest)", kDefault},
                          Variant{"all nodes (f_cut=0)", 0},
                          Variant{"leader-only (f_cut=3)", 3}}) {
    const ClusterResult r = run(v.cut_f, 50, milliseconds(25), load);
    std::printf("%-22s tput=%7.0f lat_ms=%7.1f p99=%7.1f%s\n", v.name,
                r.throughput_tps, r.avg_latency_ms, r.p99_latency_ms,
                r.consistent ? "" : "  !!INCONSISTENT");
  }

  std::puts("\n=== Ablation 2: PBFT pipelining window (baseline PBFT, WAN) ===");
  for (const SeqNum window : {1u, 2u, 4u, 8u}) {
    ClusterConfig cfg;
    cfg.protocol = Protocol::kPbft;
    cfg.n_consensus = 4;
    cfg.f = 1;
    cfg.wan = true;
    cfg.offered_load_tps = 6000;
    cfg.n_clients = 8;
    cfg.pbft_pipeline_window = window;
    cfg.duration = seconds(12);
    cfg.warmup = seconds(4);
    const ClusterResult r = run_cluster(cfg);
    std::printf("window=%-2llu tput=%7.0f lat_ms=%7.1f p99=%7.1f%s\n",
                static_cast<unsigned long long>(window), r.throughput_tps,
                r.avg_latency_ms, r.p99_latency_ms,
                r.consistent && r.ledgers_consistent ? ""
                                                     : "  !!INCONSISTENT");
  }

  std::puts("\n=== Ablation 3: bundle size x production interval ===");
  for (std::size_t bundle : {25u, 50u, 100u, 200u}) {
    for (SimTime interval : {milliseconds(10), milliseconds(25),
                             milliseconds(100)}) {
      const ClusterResult r = run(kDefault, bundle, interval, load);
      std::printf(
          "bundle=%-4zu interval=%3lldms tput=%7.0f lat_ms=%7.1f p99=%7.1f\n",
          bundle, static_cast<long long>(interval / 1'000'000),
          r.throughput_tps, r.avg_latency_ms, r.p99_latency_ms);
    }
  }
  return 0;
}
