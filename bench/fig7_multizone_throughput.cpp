// Fig. 7 — consensus-layer throughput under distribution load as full
// nodes scale: star topology (complete blocks pushed to every full
// node) vs Multi-Zone (stripes + tiny Predis blocks to relayers).
//
// The paper fixes transaction generation at 26,000 tx/s and grows the
// full-node count. Reproduction target: star throughput declines
// roughly linearly with full nodes; Multi-Zone throughput depends on
// the zone count, not the full-node count; and for both, larger n_c
// raises throughput (more consensus bandwidth shares the work).
#include <cstdio>

#include "multizone/experiments.hpp"

using namespace predis;
using namespace predis::multizone;

namespace {

void run_row(Topology topo, std::size_t n_c, std::size_t n_full,
             std::size_t zones) {
  ThroughputConfig cfg;
  cfg.topology = topo;
  cfg.n_consensus = n_c;
  cfg.f = (n_c - 1) / 3;
  cfg.n_full = n_full;
  cfg.n_zones = zones;
  // The paper fixes generation at 26,000 tx/s, a rate just above its
  // testbed's saturation. Our simulated Multi-Zone capacity is ~8 k
  // tx/s at n_c = 4, so the equivalent fixed rate here is 9 k — the
  // same "offered slightly above capacity" regime with stable trend
  // lines (deeper overload only adds pull-traffic noise).
  cfg.offered_load_tps = 9'000;
  cfg.n_clients = 8;
  cfg.duration = seconds(12);
  cfg.warmup = seconds(5);

  const ThroughputResult r = run_distribution_cluster(cfg);
  std::printf(
      "%-10s n_c=%-2zu zones=%-2zu full=%-3zu tput=%7.0f lat_ms=%7.1f "
      "uplink=%5.1fMbps coverage=%.2f%s\n",
      to_string(topo), n_c, zones, n_full, r.throughput_tps,
      r.avg_latency_ms, r.consensus_uplink_mbps, r.full_node_coverage,
      r.consistent ? "" : "  !!INCONSISTENT");
}

}  // namespace

int main() {
  std::puts(
      "=== Fig 7: star vs Multi-Zone consensus throughput, saturating load ===");

  std::puts("\n--- star topology (full blocks pushed to assigned full nodes) ---");
  for (std::size_t n_c : {4u, 8u}) {
    for (std::size_t full : {12u, 24u, 36u, 48u}) {
      run_row(Topology::kStar, n_c, full, 1);
    }
  }

  // Zones need at least n_c members each to seat their relayers, so
  // every Multi-Zone row keeps n_full >= zones x n_c.
  std::puts("\n--- Multi-Zone, 3 zones ---");
  for (std::size_t full : {12u, 24u, 36u, 48u}) {
    run_row(Topology::kMultiZone, 4, full, 3);
  }
  for (std::size_t full : {24u, 36u, 48u}) {
    run_row(Topology::kMultiZone, 8, full, 3);
  }

  std::puts("\n--- Multi-Zone, 12 zones ---");
  for (std::size_t full : {48u, 60u}) {
    run_row(Topology::kMultiZone, 4, full, 12);
  }

  std::puts(
      "\n(paper: star declines ~linearly with full nodes; Multi-Zone holds "
      "steady at fixed zone count,\n and 12-zone Multi-Zone overtakes star "
      "beyond ~24 full nodes)");
  return 0;
}
