// Multi-Zone demo: a full permissioned-blockchain deployment — P-PBFT
// consensus nodes, zoned full-node distribution with relayers, stripes
// and Predis blocks — processing client load end to end. Prints the
// relayer topology that Algorithms 1/2 converged to, and per-layer
// statistics.
//
//   ./build/examples/multizone_network [full_nodes] [zones] [tps]
#include <cstdio>
#include <cstdlib>

#include "multizone/experiments.hpp"

int main(int argc, char** argv) {
  using namespace predis;
  using namespace predis::multizone;

  ThroughputConfig cfg;
  cfg.topology = Topology::kMultiZone;
  cfg.n_consensus = 4;
  cfg.f = 1;
  cfg.n_full = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 18;
  cfg.n_zones = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 3;
  cfg.offered_load_tps = argc > 3 ? std::atof(argv[3]) : 6'000;
  cfg.duration = seconds(12);
  cfg.warmup = seconds(5);

  std::printf(
      "Multi-Zone network: %zu consensus nodes, %zu full nodes in %zu "
      "zones, %.0f tx/s offered\n",
      cfg.n_consensus, cfg.n_full, cfg.n_zones, cfg.offered_load_tps);

  const ThroughputResult r = run_distribution_cluster(cfg);

  std::printf("\nconsensus throughput : %8.0f tx/s\n", r.throughput_tps);
  std::printf("client latency (avg) : %8.1f ms\n", r.avg_latency_ms);
  std::printf("consensus uplink     : %8.1f Mbps average\n",
              r.consensus_uplink_mbps);
  std::printf("active relayers      : %zu (target: zones x n_c = %zu)\n",
              r.relayers_seen, cfg.n_zones * cfg.n_consensus);
  std::printf("full-node coverage   : %.0f%% of announced blocks rebuilt\n",
              r.full_node_coverage * 100);
  std::printf("ledger consistent    : %s\n", r.consistent ? "yes" : "NO");
  return r.consistent ? 0 : 1;
}
