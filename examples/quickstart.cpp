// Quickstart: run a 4-node P-PBFT cluster in the paper's WAN setting
// for a few simulated seconds and print throughput and latency.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/experiment.hpp"

int main() {
  using namespace predis;
  using namespace predis::core;

  ClusterConfig cfg;
  cfg.protocol = Protocol::kPredisPbft;
  cfg.n_consensus = 4;
  cfg.f = 1;
  cfg.wan = true;
  cfg.offered_load_tps = 8'000;
  cfg.n_clients = 8;
  cfg.duration = seconds(12);
  cfg.warmup = seconds(4);

  std::printf("Running %s with %zu consensus nodes, %.0f tx/s offered...\n",
              to_string(cfg.protocol), cfg.n_consensus, cfg.offered_load_tps);

  const ClusterResult r = run_cluster(cfg);

  std::printf("throughput      : %8.0f tx/s\n", r.throughput_tps);
  std::printf("latency avg/p50/p99: %.1f / %.1f / %.1f ms\n",
              r.avg_latency_ms, r.p50_latency_ms, r.p99_latency_ms);
  std::printf("committed txs   : %llu (submitted %llu)\n",
              static_cast<unsigned long long>(r.committed_txs),
              static_cast<unsigned long long>(r.submitted_txs));
  std::printf("blocks decided  : %zu\n", r.commit_events);
  std::printf("ledger consistent: %s\n", r.consistent ? "yes" : "NO");
  std::printf("consensus uplink : %.1f Mbps avg\n", r.consensus_uplink_mbps);
  return r.consistent ? 0 : 1;
}
