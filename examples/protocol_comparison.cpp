// Protocol comparison: run the paper's four main protocols (PBFT,
// HotStuff, P-PBFT, P-HS) side by side at one offered load and print a
// table — a miniature of Fig. 4 at a single operating point.
//
//   ./build/examples/protocol_comparison [offered_tps] [n_consensus]
#include <cstdio>
#include <cstdlib>

#include "core/experiment.hpp"

int main(int argc, char** argv) {
  using namespace predis;
  using namespace predis::core;

  const double offered = argc > 1 ? std::atof(argv[1]) : 10'000.0;
  const std::size_t n = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 4;

  const Protocol protocols[] = {Protocol::kPbft, Protocol::kHotStuff,
                                Protocol::kPredisPbft,
                                Protocol::kPredisHotStuff};

  std::printf("%-10s %12s %12s %12s %10s %8s\n", "protocol", "tput(tx/s)",
              "avg lat(ms)", "p99 lat(ms)", "blocks", "safe");
  for (Protocol p : protocols) {
    ClusterConfig cfg;
    cfg.protocol = p;
    cfg.n_consensus = n;
    cfg.f = (n - 1) / 3;
    cfg.wan = true;
    cfg.offered_load_tps = offered;
    cfg.n_clients = 8;
    cfg.duration = seconds(12);
    cfg.warmup = seconds(4);

    const ClusterResult r = run_cluster(cfg);
    std::printf("%-10s %12.0f %12.1f %12.1f %10zu %8s\n", to_string(p),
                r.throughput_tps, r.avg_latency_ms, r.p99_latency_ms,
                r.commit_events, r.consistent ? "yes" : "NO");
  }
  return 0;
}
