// Block-propagation explorer: compare how fast one block of a given
// size reaches every full node under the three topologies of Fig. 8.
//
//   ./build/examples/block_propagation [block_mb] [full_nodes]
#include <cstdio>
#include <cstdlib>

#include "multizone/experiments.hpp"

int main(int argc, char** argv) {
  using namespace predis;
  using namespace predis::multizone;

  const std::size_t block_mb =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 5;
  const std::size_t n_full =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 50;

  std::printf("Propagating %zu MB blocks to %zu full nodes (8 consensus "
              "nodes, LAN)\n\n",
              block_mb, n_full);
  std::printf("%-14s %10s %10s %10s %9s\n", "topology", "50%(ms)",
              "90%(ms)", "100%(ms)", "coverage");

  struct Row {
    const char* name;
    Topology topo;
    std::size_t zones;
  };
  // Zones must hold at least ~n_c members each to seat their relayers.
  for (const Row row : {Row{"star", Topology::kStar, 1},
                        Row{"random(FEG)", Topology::kRandom, 1},
                        Row{"multizone-2", Topology::kMultiZone, 2},
                        Row{"multizone-4", Topology::kMultiZone, 4}}) {
    PropagationConfig cfg;
    cfg.topology = row.topo;
    cfg.n_consensus = 8;
    cfg.f = 2;
    cfg.n_full = n_full;
    cfg.n_zones = row.zones;
    cfg.block_bytes = block_mb << 20;
    cfg.bundle_bytes = 256 << 10;
    cfg.n_blocks = 3;

    const PropagationResult r = run_propagation(cfg);
    auto at = [&r](double f) {
      const auto it = r.latency_ms_at_fraction.find(f);
      return it == r.latency_ms_at_fraction.end() ? -1.0 : it->second;
    };
    std::printf("%-14s %10.0f %10.0f %10.0f %8.0f%%\n", row.name, at(0.5),
                at(0.9), at(1.0), r.full_coverage_fraction * 100);
  }
  return 0;
}
