// Byzantine-fault demo (the scenarios behind Fig. 6): run P-PBFT with
// healthy nodes, then with silent nodes (case 1), then with nodes that
// withhold bundles from part of the network (case 2), and report how
// throughput and latency respond.
//
//   ./build/examples/byzantine_faults [offered_tps]
#include <cstdio>
#include <cstdlib>

#include "core/experiment.hpp"

int main(int argc, char** argv) {
  using namespace predis;
  using namespace predis::core;
  using consensus::predis::FaultMode;

  const double offered = argc > 1 ? std::atof(argv[1]) : 10'000;

  struct Scenario {
    const char* name;
    std::size_t n_faulty;
    FaultMode mode;
  };
  const Scenario scenarios[] = {
      {"all honest", 0, FaultMode::kNone},
      {"1 silent node (case 1)", 1, FaultMode::kSilent},
      {"2 silent nodes (case 1)", 2, FaultMode::kSilent},
      {"1 withholding node (case 2)", 1, FaultMode::kPartialDissemination},
      {"2 withholding nodes (case 2)", 2,
       FaultMode::kPartialDissemination},
  };

  std::printf("P-PBFT, 8 consensus nodes, WAN, %.0f tx/s offered\n\n",
              offered);
  std::printf("%-30s %12s %12s %8s\n", "scenario", "tput(tx/s)",
              "lat(ms)", "safe");
  for (const Scenario& s : scenarios) {
    ClusterConfig cfg;
    cfg.protocol = Protocol::kPredisPbft;
    cfg.n_consensus = 8;
    cfg.f = 2;
    cfg.wan = true;
    cfg.offered_load_tps = offered;
    cfg.n_clients = 8;
    cfg.duration = seconds(12);
    cfg.warmup = seconds(4);
    cfg.n_faulty = s.n_faulty;
    cfg.fault_mode = s.mode;

    const ClusterResult r = run_cluster(cfg);
    std::printf("%-30s %12.0f %12.1f %8s\n", s.name, r.throughput_tps,
                r.avg_latency_ms, r.consistent ? "yes" : "NO");
  }
  std::puts(
      "\nSilent nodes cost their share of bundle production ((n-f')/n of "
      "normal);\nwithholding nodes keep producing, so honest nodes fetch "
      "the gaps and\nthroughput stays close to normal at the cost of "
      "fetch latency.");
  return 0;
}
